package eigen

import (
	"math"
	"testing"

	"repro/internal/fem"
	"repro/internal/model"
	"repro/internal/splitting"
)

func TestLanczosLaplacianExtremes(t *testing.T) {
	n := 60
	k := model.Laplacian1D(n)
	wantLo, wantHi := lap1DEigs(n)
	lo, hi, err := Lanczos(csrOp(k), n, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hi-wantHi) > 1e-4*wantHi {
		t.Fatalf("λmax = %v, want %v", hi, wantHi)
	}
	// The lower end of the Laplacian spectrum is clustered, so Ritz
	// convergence there is slow: demand an interior estimate within 5× of
	// the true λmin (the interval pad absorbs this downstream).
	if lo < wantLo-1e-10 || lo > 5*wantLo {
		t.Fatalf("λmin = %v, want within [%v, %v]", lo, wantLo, 5*wantLo)
	}
}

func TestLanczosFullStepsExact(t *testing.T) {
	// steps = n: Ritz values are the exact spectrum extremes.
	n := 20
	k := model.Laplacian1D(n)
	wantLo, wantHi := lap1DEigs(n)
	lo, hi, err := Lanczos(csrOp(k), n, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-wantLo) > 1e-9 || math.Abs(hi-wantHi) > 1e-9 {
		t.Fatalf("extremes (%v, %v), want (%v, %v)", lo, hi, wantLo, wantHi)
	}
}

func TestLanczosInvariantSubspaceStops(t *testing.T) {
	// Identity operator: the Krylov space collapses after one step; the
	// estimate must still be exactly 1.
	id := func(dst, x []float64) { copy(dst, x) }
	lo, hi, err := Lanczos(id, 10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1) > 1e-12 || math.Abs(hi-1) > 1e-12 {
		t.Fatalf("identity extremes (%v, %v)", lo, hi)
	}
}

func TestLanczosErrors(t *testing.T) {
	if _, _, err := Lanczos(nil, 0, 5, 1); err == nil {
		t.Fatal("empty system accepted")
	}
}

func TestEstimateIntervalLanczosMatchesPowerMethod(t *testing.T) {
	plate, err := fem.NewPlate(8, 8, fem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := splitting.NewSixColorSSOR(plate.KColored, plate.Ordering.GroupStart[:])
	if err != nil {
		t.Fatal(err)
	}
	ivP, err := EstimateInterval(mc, 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	ivL, err := EstimateIntervalLanczos(mc, 40, 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ivL.Hi-ivP.Hi) > 0.05*ivP.Hi {
		t.Fatalf("Hi: lanczos %v vs power %v", ivL.Hi, ivP.Hi)
	}
	// λmin of SSOR-preconditioned operators is tiny; demand order-of-
	// magnitude agreement.
	if ivL.Lo <= 0 || ivL.Lo > 10*ivP.Lo || ivP.Lo > 10*ivL.Lo {
		t.Fatalf("Lo: lanczos %v vs power %v", ivL.Lo, ivP.Lo)
	}
}

func TestEstimateIntervalLanczosErrors(t *testing.T) {
	k := model.Laplacian1D(5)
	j, _ := splitting.NewJacobi(k)
	if _, err := EstimateIntervalLanczos(j, 10, -1, 1); err == nil {
		t.Fatal("negative pad accepted")
	}
}
