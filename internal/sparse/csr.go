package sparse

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/vec"
)

// CSR is a compressed-sparse-row matrix. Column indices within each row are
// strictly increasing (the invariant established by COO.ToCSR and preserved
// by every constructor in this package).
type CSR struct {
	Rows, Cols int
	RowPtr     []int // len Rows+1
	ColIdx     []int // len NNZ
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// At returns element (i, j) by binary search within row i.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case a.ColIdx[mid] < j:
			lo = mid + 1
		case a.ColIdx[mid] > j:
			hi = mid
		default:
			return a.Val[mid]
		}
	}
	return 0
}

// MulVec returns A·x as a new vector.
func (a *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, a.Rows)
	a.MulVecTo(y, x)
	return y
}

// MulVecTo computes dst = A·x. dst must not alias x.
func (a *CSR) MulVecTo(dst, x []float64) {
	if len(x) != a.Cols || len(dst) != a.Rows {
		panic(fmt.Sprintf("sparse: MulVecTo dims: A %d×%d, x %d, dst %d", a.Rows, a.Cols, len(x), len(dst)))
	}
	for i := 0; i < a.Rows; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] = s
	}
}

// ParMulVecTo computes dst = A·x with rows partitioned across up to
// `workers` goroutines. Each goroutine owns a contiguous row block, so the
// result is bitwise identical to the serial product. workers == 1 takes
// the serial path without allocating (the allocation-free cg.SolveInto
// contract relies on this); workers <= 0 means GOMAXPROCS.
func (a *CSR) ParMulVecTo(dst, x []float64, workers int) {
	if workers == 1 {
		a.MulVecTo(dst, x)
		return
	}
	if len(x) != a.Cols || len(dst) != a.Rows {
		panic(fmt.Sprintf("sparse: ParMulVecTo dims: A %d×%d, x %d, dst %d", a.Rows, a.Cols, len(x), len(dst)))
	}
	vec.ParRange(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				s += a.Val[k] * x[a.ColIdx[k]]
			}
			dst[i] = s
		}
	})
}

// MulMatTo computes dst = A·X for a column-block multivector X: one pass
// over the matrix rows feeds all s columns, so row i's index/value block is
// loaded once (staying in cache across the s column products) instead of
// once per right-hand side — the SpMM form of the paper's
// amortize-startup-over-longer-work argument. Per-column arithmetic order
// matches MulVecTo exactly. dst must not alias x.
func (a *CSR) MulMatTo(dst, x *vec.Multi) {
	if x.N != a.Cols || dst.N != a.Rows || dst.S != x.S {
		panic(fmt.Sprintf("sparse: MulMatTo dims: A %d×%d, x %d×%d, dst %d×%d",
			a.Rows, a.Cols, x.N, x.S, dst.N, dst.S))
	}
	a.mulMatRange(dst, x, 0, a.Rows)
}

// mulMatRange runs the SpMM over the row range [lo, hi) via the fused
// column-tiled kernel (kernel.SpMMCSRCols): each row's entry list is scanned
// once per column tile (not once per column), with the tile's partial sums
// accumulating in registers; per-column summation order still matches
// MulVecTo exactly.
func (a *CSR) mulMatRange(dst, x *vec.Multi, lo, hi int) {
	kernel.SpMMCSRCols(a.RowPtr, a.ColIdx, a.Val, x.Data, a.Cols, dst.Data, dst.N, lo, hi, x.S)
}

// ParMulMatTo is MulMatTo with rows partitioned across up to `workers`
// goroutines via vec.ParRange; each goroutine owns a contiguous row block
// of every column, so the result is bitwise identical to the serial
// product. workers == 1 takes the serial allocation-free path.
func (a *CSR) ParMulMatTo(dst, x *vec.Multi, workers int) {
	if workers == 1 {
		a.MulMatTo(dst, x)
		return
	}
	if x.N != a.Cols || dst.N != a.Rows || dst.S != x.S {
		panic(fmt.Sprintf("sparse: ParMulMatTo dims: A %d×%d, x %d×%d, dst %d×%d",
			a.Rows, a.Cols, x.N, x.S, dst.N, dst.S))
	}
	vec.ParRange(a.Rows, workers, func(lo, hi int) {
		a.mulMatRange(dst, x, lo, hi)
	})
}

// Diag returns the main diagonal as a dense vector (zeros where absent).
func (a *CSR) Diag() []float64 {
	n := min(a.Rows, a.Cols)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = a.At(i, i)
	}
	return d
}

// IsSymmetric reports whether A equals Aᵀ within tol relative to the largest
// entry magnitude. Requires a square matrix.
func (a *CSR) IsSymmetric(tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	var maxAbs float64
	for _, v := range a.Val {
		if ab := math.Abs(v); ab > maxAbs {
			maxAbs = ab
		}
	}
	if maxAbs == 0 {
		return true
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if math.Abs(a.Val[k]-a.At(j, i)) > tol*maxAbs {
				return false
			}
		}
	}
	return true
}

// Transpose returns Aᵀ.
func (a *CSR) Transpose() *CSR {
	counts := make([]int, a.Cols+1)
	for _, j := range a.ColIdx {
		counts[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		counts[j+1] += counts[j]
	}
	t := &CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: counts,
		ColIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	next := make([]int, a.Cols)
	copy(next, t.RowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = a.Val[k]
			next[j]++
		}
	}
	return t
}

// Clone returns a deep copy.
func (a *CSR) Clone() *CSR {
	return &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: append([]int{}, a.RowPtr...),
		ColIdx: append([]int{}, a.ColIdx...),
		Val:    append([]float64{}, a.Val...),
	}
}

// SplitDLU splits a square A into its diagonal D (dense vector), strictly
// lower part L, and strictly upper part U, with A = D + L + U as stored.
// Note the paper's convention is K = D − L − U (L, U carry minus signs);
// callers that need that convention negate the returned parts.
func (a *CSR) SplitDLU() (d []float64, l, u *CSR) {
	if a.Rows != a.Cols {
		panic("sparse: SplitDLU needs a square matrix")
	}
	n := a.Rows
	d = make([]float64, n)
	lc := NewCOO(n, n)
	uc := NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			switch {
			case j == i:
				d[i] = a.Val[k]
			case j < i:
				lc.Add(i, j, a.Val[k])
			default:
				uc.Add(i, j, a.Val[k])
			}
		}
	}
	return d, lc.ToCSR(), uc.ToCSR()
}

// MaxRowNNZ returns the maximum number of stored entries in any row — the
// paper's "at most 14 nonzero elements" claim is checked against this.
func (a *CSR) MaxRowNNZ() int {
	m := 0
	for i := 0; i < a.Rows; i++ {
		if n := a.RowPtr[i+1] - a.RowPtr[i]; n > m {
			m = n
		}
	}
	return m
}

// Dense returns the dense row-major expansion; intended for tests on tiny
// matrices only.
func (a *CSR) Dense() [][]float64 {
	out := make([][]float64, a.Rows)
	for i := range out {
		out[i] = make([]float64, a.Cols)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			out[i][a.ColIdx[k]] = a.Val[k]
		}
	}
	return out
}

// ScaleRows multiplies row i by s[i] in place (used to form D⁻¹·A etc.).
func (a *CSR) ScaleRows(s []float64) {
	if len(s) != a.Rows {
		panic("sparse: ScaleRows length mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			a.Val[k] *= s[i]
		}
	}
}

// Identity returns the n×n identity in CSR form.
func Identity(n int) *CSR {
	a := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1), ColIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		a.RowPtr[i+1] = i + 1
		a.ColIdx[i] = i
		a.Val[i] = 1
	}
	return a
}
