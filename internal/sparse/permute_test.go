package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPerm(rng *rand.Rand, n int) Perm {
	p := NewIdentityPerm(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestPermValid(t *testing.T) {
	if !(Perm{2, 0, 1}).Valid() {
		t.Fatal("valid perm rejected")
	}
	if (Perm{0, 0, 1}).Valid() {
		t.Fatal("duplicate accepted")
	}
	if (Perm{0, 3}).Valid() {
		t.Fatal("out-of-range accepted")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		p := randPerm(rng, n)
		inv := p.Inverse()
		for i := 0; i < n; i++ {
			if inv[p[i]] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestApplyUnapplyVec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		p := randPerm(rng, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		back := p.UnapplyVec(p.ApplyVec(x))
		for i := range x {
			if back[i] != x[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: permuted SpMV commutes — B·(Px) = P·(Ax) where B = PermuteSym(A, p).
func TestPermuteSymCommutes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		a := randCSR(rng, n, 4)
		p := randPerm(rng, n)
		b := PermuteSym(a, p)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lhs := b.MulVec(p.ApplyVec(x))
		rhs := p.ApplyVec(a.MulVec(x))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-12*(1+math.Abs(rhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteSymPreservesSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 20
	c := NewCOO(n, n)
	for k := 0; k < 60; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		v := rng.NormFloat64()
		c.Add(i, j, v)
		c.Add(j, i, v)
	}
	a := c.ToCSR()
	if !a.IsSymmetric(1e-14) {
		t.Fatal("setup not symmetric")
	}
	b := PermuteSym(a, randPerm(rng, n))
	if !b.IsSymmetric(1e-14) {
		t.Fatal("permutation broke symmetry")
	}
}

func TestPermuteSymIdentity(t *testing.T) {
	a := small()
	b := PermuteSym(a, NewIdentityPerm(3))
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatal("identity permutation changed matrix")
			}
		}
	}
}
