package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/vec"
)

// TestMulMatIToMatchesMulMatTo pins the layout-parity contract: the
// interleaved SpMM equals the column-contiguous SpMM bit for bit, for both
// backends and both kernel sets, across shapes straddling the unroll widths.
func TestMulMatIToMatchesMulMatTo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, impl := range []*kernel.Impl{kernel.Portable(), kernel.Active()} {
		for _, n := range []int{1, 9, 64, 65} {
			for _, s := range []int{1, 3, 8, 16} {
				a := randSquareCSR(rng, n, 0.2)
				x := vec.NewMulti(n, s)
				for i := range x.Data {
					x.Data[i] = rng.NormFloat64()
				}
				want := vec.NewMulti(n, s)
				a.MulMatTo(want, x)

				ix := x.Interleaved()
				idst := vec.NewIMulti(n, s)
				a.MulMatITo(idst, ix, impl)
				got := vec.NewMulti(n, s)
				idst.DeinterleaveInto(got, impl)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%s CSR n=%d s=%d: flat %d got %v want %v", impl.Name, n, s, i, got.Data[i], want.Data[i])
					}
				}

				dia, err := NewDIAFromCSR(a)
				if err != nil {
					t.Fatal(err)
				}
				dia.MulMatTo(want, x)
				idst.Zero()
				dia.MulMatITo(idst, ix, impl)
				idst.DeinterleaveInto(got, impl)
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%s DIA n=%d s=%d: flat %d got %v want %v", impl.Name, n, s, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

// TestParMulMatIToMatchesSerial checks the parallel interleaved products are
// bitwise identical to serial (contiguous row blocks, no reassociation).
func TestParMulMatIToMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n, s := 200, 8
	a := randSquareCSR(rng, n, 0.1)
	x := vec.NewIMulti(n, s)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	want := vec.NewIMulti(n, s)
	a.MulMatITo(want, x, nil)
	dia, err := NewDIAFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	wantDIA := vec.NewIMulti(n, s)
	dia.MulMatITo(wantDIA, x, nil)
	for _, w := range []int{1, 2, 5} {
		got := vec.NewIMulti(n, s)
		a.ParMulMatITo(got, x, w, nil)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("CSR workers=%d: flat %d differs", w, i)
			}
		}
		got.Zero()
		dia.ParMulMatITo(got, x, w, nil)
		for i := range got.Data {
			if got.Data[i] != wantDIA.Data[i] {
				t.Fatalf("DIA workers=%d: flat %d differs", w, i)
			}
		}
	}
}

// TestMulMatIToAllocFree guards the serial interleaved products'
// zero-allocation property (the tile hot path).
func TestMulMatIToAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, s := 128, 8
	a := randSquareCSR(rng, n, 0.1)
	dia, err := NewDIAFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	x, dst := vec.NewIMulti(n, s), vec.NewIMulti(n, s)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	if al := testing.AllocsPerRun(20, func() { a.MulMatITo(dst, x, nil) }); al != 0 {
		t.Errorf("CSR.MulMatITo allocates %.1f per run", al)
	}
	if al := testing.AllocsPerRun(20, func() { a.ParMulMatITo(dst, x, 1, nil) }); al != 0 {
		t.Errorf("CSR.ParMulMatITo(w=1) allocates %.1f per run", al)
	}
	if al := testing.AllocsPerRun(20, func() { dia.MulMatITo(dst, x, nil) }); al != 0 {
		t.Errorf("DIA.MulMatITo allocates %.1f per run", al)
	}
	if al := testing.AllocsPerRun(20, func() { dia.ParMulMatITo(dst, x, 1, nil) }); al != 0 {
		t.Errorf("DIA.ParMulMatITo(w=1) allocates %.1f per run", al)
	}
}

func TestMulMatIToDimsPanic(t *testing.T) {
	a := randSquareCSR(rand.New(rand.NewSource(14)), 6, 0.3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	a.MulMatITo(vec.NewIMulti(5, 2), vec.NewIMulti(6, 2), nil)
}
