package sparse

import "fmt"

// Perm represents a permutation of {0,…,n−1}. p[newIndex] = oldIndex: the
// value at position i names which original index moves to position i. This
// is the natural direction for "number the Red u equations first …"
// multicolor orderings: the permutation is simply the concatenated color
// groups listed in their new order.
type Perm []int

// NewIdentityPerm returns the identity permutation of length n.
func NewIdentityPerm(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Valid reports whether p is a genuine permutation of {0,…,len(p)−1}.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, old := range p {
		if old < 0 || old >= len(p) || seen[old] {
			return false
		}
		seen[old] = true
	}
	return true
}

// Inverse returns q with q[oldIndex] = newIndex.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for newIdx, old := range p {
		q[old] = newIdx
	}
	return q
}

// ApplyVec gathers src into a new vector: dst[new] = src[p[new]].
func (p Perm) ApplyVec(src []float64) []float64 {
	if len(src) != len(p) {
		panic(fmt.Sprintf("sparse: ApplyVec length mismatch %d vs %d", len(src), len(p)))
	}
	dst := make([]float64, len(p))
	for newIdx, old := range p {
		dst[newIdx] = src[old]
	}
	return dst
}

// UnapplyVec scatters src back to original ordering: dst[p[new]] = src[new].
func (p Perm) UnapplyVec(src []float64) []float64 {
	if len(src) != len(p) {
		panic(fmt.Sprintf("sparse: UnapplyVec length mismatch %d vs %d", len(src), len(p)))
	}
	dst := make([]float64, len(p))
	for newIdx, old := range p {
		dst[old] = src[newIdx]
	}
	return dst
}

// PermuteSym returns B = Pᵀ A P in index terms: B[new_i][new_j] =
// A[p[new_i]][p[new_j]]. Symmetry and positive definiteness are preserved.
func PermuteSym(a *CSR, p Perm) *CSR {
	if a.Rows != a.Cols || a.Rows != len(p) {
		panic(fmt.Sprintf("sparse: PermuteSym needs square matrix matching perm: %d×%d vs %d", a.Rows, a.Cols, len(p)))
	}
	inv := p.Inverse()
	c := NewCOO(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		ni := inv[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c.Add(ni, inv[a.ColIdx[k]], a.Val[k])
		}
	}
	return c.ToCSR()
}
