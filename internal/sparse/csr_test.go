package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// small builds the 3×3 test matrix
//
//	[2 -1  0]
//	[-1 2 -1]
//	[0 -1  2]
func small() *CSR {
	c := NewCOO(3, 3)
	for i := 0; i < 3; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i < 2 {
			c.Add(i, i+1, -1)
		}
	}
	return c.ToCSR()
}

func randCSR(rng *rand.Rand, n, perRow int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		for k := 0; k < perRow; k++ {
			c.Add(i, rng.Intn(n), rng.NormFloat64())
		}
	}
	return c.ToCSR()
}

func TestCOODuplicatesSummed(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(0, 0, 2)
	c.Add(1, 0, 5)
	a := c.ToCSR()
	if a.At(0, 0) != 3 {
		t.Fatalf("duplicate sum: %v", a.At(0, 0))
	}
	if a.At(1, 0) != 5 || a.At(1, 1) != 0 {
		t.Fatalf("entries wrong: %v", a.Dense())
	}
}

func TestCOOCancellationDropped(t *testing.T) {
	c := NewCOO(1, 1)
	c.Add(0, 0, 1)
	c.Add(0, 0, -1)
	a := c.ToCSR()
	if a.NNZ() != 0 {
		t.Fatalf("cancelled entry kept: nnz=%d", a.NNZ())
	}
}

func TestCOOBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestCSRSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randCSR(rng, 30, 5)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i] + 1; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] <= a.ColIdx[k-1] {
				t.Fatalf("row %d columns not strictly increasing", i)
			}
		}
	}
}

func TestMulVecKnown(t *testing.T) {
	a := small()
	y := a.MulVec([]float64{1, 2, 3})
	want := []float64{0, 0, 4}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", y, want)
		}
	}
}

func TestAtMissing(t *testing.T) {
	a := small()
	if a.At(0, 2) != 0 {
		t.Fatal("missing entry should read 0")
	}
	if a.At(0, 1) != -1 {
		t.Fatal("present entry misread")
	}
}

func TestDiag(t *testing.T) {
	d := small().Diag()
	for _, v := range d {
		if v != 2 {
			t.Fatalf("Diag = %v", d)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	if !small().IsSymmetric(1e-14) {
		t.Fatal("symmetric matrix misreported")
	}
	c := NewCOO(2, 2)
	c.Add(0, 1, 1)
	if c.ToCSR().IsSymmetric(1e-14) {
		t.Fatal("asymmetric matrix misreported")
	}
}

func TestTranspose(t *testing.T) {
	c := NewCOO(2, 3)
	c.Add(0, 2, 5)
	c.Add(1, 0, 7)
	at := c.ToCSR().Transpose()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("Transpose dims %d×%d", at.Rows, at.Cols)
	}
	if at.At(2, 0) != 5 || at.At(0, 1) != 7 {
		t.Fatalf("Transpose values: %v", at.Dense())
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := randCSR(rng, n, 4)
		b := a.Transpose().Transpose()
		if a.NNZ() != b.NNZ() {
			return false
		}
		for i := 0; i < n; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if b.At(i, a.ColIdx[k]) != a.Val[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitDLUReassembles(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randCSR(rng, n, 4)
		d, l, u := a.SplitDLU()
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ya := a.MulVec(x)
		yl := l.MulVec(x)
		yu := u.MulVec(x)
		for i := 0; i < n; i++ {
			sum := d[i]*x[i] + yl[i] + yu[i]
			if math.Abs(sum-ya[i]) > 1e-12*(1+math.Abs(ya[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParMulVecMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randCSR(rng, 5000, 9)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 5000)
	y2 := make([]float64, 5000)
	a.MulVecTo(y1, x)
	a.ParMulVecTo(y2, x, 8)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("parallel SpMV differs at %d: %v vs %v", i, y2[i], y1[i])
		}
	}
}

func TestMaxRowNNZ(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 0, 1)
	c.Add(1, 0, 1)
	c.Add(1, 1, 1)
	c.Add(1, 2, 1)
	if got := c.ToCSR().MaxRowNNZ(); got != 3 {
		t.Fatalf("MaxRowNNZ = %d, want 3", got)
	}
}

func TestScaleRows(t *testing.T) {
	a := small()
	a.ScaleRows([]float64{1, 0.5, 2})
	if a.At(1, 1) != 1 || a.At(2, 1) != -2 {
		t.Fatalf("ScaleRows: %v", a.Dense())
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := id.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("Identity MulVec = %v", y)
		}
	}
	if id.NNZ() != 4 {
		t.Fatalf("Identity nnz = %d", id.NNZ())
	}
}

func TestEmptyRowsRowPtr(t *testing.T) {
	c := NewCOO(4, 4)
	c.Add(3, 3, 1) // rows 0..2 empty
	a := c.ToCSR()
	for i := 0; i < 3; i++ {
		if a.RowPtr[i+1] != a.RowPtr[i] {
			t.Fatalf("empty row %d has entries", i)
		}
	}
	if a.At(3, 3) != 1 {
		t.Fatal("entry lost")
	}
}
