package sparse

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/vec"
)

// InterleavedOperator is the optional fast path of Operator: a backend that
// can also apply itself to a row-interleaved panel (vec.IMulti), where one
// gathered row index feeds all live columns from adjacent memory. The
// solvers type-assert for it — a backend without it simply keeps the
// column-contiguous block product — so adding the capability never breaks
// the Operator contract.
//
// impl selects the kernel set for the product (nil means the
// startup-selected set); the same Par contract as Operator applies: workers
// == 1 is serial and allocation-free, and every parallel product is bitwise
// identical to its serial form.
type InterleavedOperator interface {
	Operator
	// MulMatITo computes dst = A·X over interleaved panels.
	MulMatITo(dst, x *vec.IMulti, impl *kernel.Impl)
	// ParMulMatITo is MulMatITo with rows partitioned across up to workers
	// goroutines.
	ParMulMatITo(dst, x *vec.IMulti, workers int, impl *kernel.Impl)
}

var (
	_ InterleavedOperator = (*CSR)(nil)
	_ InterleavedOperator = (*DIA)(nil)
)

func checkIDims(op string, rows, cols int, dst, x *vec.IMulti) {
	if x.N != cols || dst.N != rows || dst.S != x.S {
		panic(fmt.Sprintf("sparse: %s dims: A %d×%d, x %d×%d, dst %d×%d",
			op, rows, cols, x.N, x.S, dst.N, dst.S))
	}
}

// MulMatITo computes dst = A·X for row-interleaved panels: each gathered
// row index feeds all live columns from one cache line. Per-column
// arithmetic order matches MulVecTo (and MulMatTo) exactly. dst must not
// alias x.
func (a *CSR) MulMatITo(dst, x *vec.IMulti, impl *kernel.Impl) {
	checkIDims("MulMatITo", a.Rows, a.Cols, dst, x)
	if impl == nil {
		impl = kernel.Active()
	}
	impl.SpMMCSRI(a.RowPtr, a.ColIdx, a.Val, x.Data, x.Stride, dst.Data, dst.Stride, 0, a.Rows, x.S)
}

// ParMulMatITo is MulMatITo with rows partitioned across up to `workers`
// goroutines via vec.ParRange; each goroutine owns a contiguous row block of
// the panel, so the result is bitwise identical to the serial product.
// workers == 1 takes the serial allocation-free path.
func (a *CSR) ParMulMatITo(dst, x *vec.IMulti, workers int, impl *kernel.Impl) {
	if impl == nil {
		impl = kernel.Active()
	}
	if workers == 1 {
		a.MulMatITo(dst, x, impl)
		return
	}
	checkIDims("ParMulMatITo", a.Rows, a.Cols, dst, x)
	vec.ParRange(a.Rows, workers, func(lo, hi int) {
		impl.SpMMCSRI(a.RowPtr, a.ColIdx, a.Val, x.Data, x.Stride, dst.Data, dst.Stride, lo, hi, x.S)
	})
}

// MulMatITo computes dst = A·X for row-interleaved panels, one stored
// diagonal at a time; every triad touches contiguous panel rows on both
// operands. Per-column arithmetic order matches MulVecTo exactly. dst must
// not alias x.
func (a *DIA) MulMatITo(dst, x *vec.IMulti, impl *kernel.Impl) {
	checkIDims("DIA.MulMatITo", a.N, a.N, dst, x)
	if impl == nil {
		impl = kernel.Active()
	}
	impl.SpMMDIAI(a.Offsets, a.Diags, a.N, x.Data, x.Stride, dst.Data, dst.Stride, 0, a.N, x.S)
}

// ParMulMatITo is DIA.MulMatITo with rows partitioned across up to `workers`
// goroutines; bitwise identical to the serial product, and serial (and
// allocation-free) at workers == 1.
func (a *DIA) ParMulMatITo(dst, x *vec.IMulti, workers int, impl *kernel.Impl) {
	if impl == nil {
		impl = kernel.Active()
	}
	if workers == 1 {
		a.MulMatITo(dst, x, impl)
		return
	}
	checkIDims("DIA.ParMulMatITo", a.N, a.N, dst, x)
	vec.ParRange(a.N, workers, func(lo, hi int) {
		impl.SpMMDIAI(a.Offsets, a.Diags, a.N, x.Data, x.Stride, dst.Data, dst.Stride, lo, hi, x.S)
	})
}
