package sparse

import "repro/internal/vec"

// Operator is the matrix–vector contract the iterative solvers consume: any
// storage backend that can report its shape and main diagonal and apply
// itself to a vector or a column-block multivector, serially or with a
// bounded goroutine fan-out. CSR and DIA both satisfy it; cg.Solve and
// friends are written against this interface, so adding a backend (an
// interleaved block layout, an SoA experiment) never touches the solver.
//
// Contract: the Par variants with workers == 1 must take the serial
// allocation-free path and every parallel product must be bitwise identical
// to its serial form (the solvers' reproducibility guarantee rides on it).
type Operator interface {
	// Dims returns the matrix shape.
	Dims() (rows, cols int)
	// MulVecTo computes dst = A·x. dst must not alias x.
	MulVecTo(dst, x []float64)
	// ParMulVecTo is MulVecTo with rows partitioned across up to workers
	// goroutines; workers <= 1 is serial and allocation-free.
	ParMulVecTo(dst, x []float64, workers int)
	// MulMatTo computes dst = A·X for a column-block multivector X.
	MulMatTo(dst, x *vec.Multi)
	// ParMulMatTo is MulMatTo with rows partitioned across up to workers
	// goroutines; workers <= 1 is serial and allocation-free.
	ParMulMatTo(dst, x *vec.Multi, workers int)
	// Diag returns the main diagonal as a fresh dense vector (zeros where
	// absent).
	Diag() []float64
}

var (
	_ Operator = (*CSR)(nil)
	_ Operator = (*DIA)(nil)
)

// Dims returns the matrix shape.
func (a *CSR) Dims() (rows, cols int) { return a.Rows, a.Cols }

// Dims returns the matrix shape (DIA matrices are square).
func (a *DIA) Dims() (rows, cols int) { return a.N, a.N }

// Diag returns the main diagonal as a fresh dense vector (zeros where
// absent).
func (a *DIA) Diag() []float64 {
	d := make([]float64, a.N)
	for k, off := range a.Offsets {
		if off == 0 {
			copy(d, a.Diags[k])
			break
		}
	}
	return d
}

// DiagStats scans the sparsity pattern once and reports its diagonal
// structure: the number of distinct occupied diagonals (what a DIA
// conversion would store) and the bandwidth max|j−i|. Together with NNZ and
// MaxRowNNZ these are the structure probes behind automatic backend
// selection: a multicolor-ordered plate occupies a fixed, size-independent
// family of diagonals, while scattered fill occupies O(n) of them.
func (a *CSR) DiagStats() (numDiags, bandwidth int) {
	// Offsets range over [-(rows-1), cols-1]; mark occupancy in one flat
	// scan rather than a map (this runs on every Auto-policy solve).
	if a.Rows == 0 || a.Cols == 0 {
		return 0, 0
	}
	occupied := make([]bool, a.Rows+a.Cols-1)
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := a.ColIdx[k] - i
			if occupied[d+a.Rows-1] {
				continue
			}
			occupied[d+a.Rows-1] = true
			numDiags++
			if d < 0 {
				d = -d
			}
			if d > bandwidth {
				bandwidth = d
			}
		}
	}
	return numDiags, bandwidth
}

// DIAFillRatio reports NNZ / (numDiags·n): the fraction of a DIA
// conversion's stored slots that would hold actual nonzeros. 1 means every
// stored diagonal is full (the ideal vector-triad regime); small values
// mean diagonal storage would mostly stream padding zeros. This is the
// quantity plan.Probe thresholds when resolving the Auto backend (stored
// on the probe from its own DiagStats scan, not by calling this helper);
// the helper itself serves reports and benchmarks.
func (a *CSR) DIAFillRatio() float64 {
	nd, _ := a.DiagStats()
	if nd == 0 {
		return 0
	}
	n := max(a.Rows, a.Cols)
	return float64(a.NNZ()) / (float64(nd) * float64(n))
}
