// Package sparse provides the sparse matrix substrate for the m-step PCG
// library: a COO assembly builder, CSR for general kernels, DIA ("storage by
// diagonals", the CYBER 203/205 layout of Madsen–Rodrigue–Karush used in
// the paper's §3.1), symmetric permutations for multicolor orderings, and
// serial plus chunked-parallel SpMV.
package sparse

import (
	"fmt"
	"sort"
)

// COO is an assembly-friendly coordinate-format builder. Duplicate entries
// are summed when converting to CSR, which is exactly what finite element
// assembly needs.
type COO struct {
	rows, cols int
	i, j       []int
	v          []float64
}

// NewCOO returns an empty rows×cols builder.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("sparse: negative COO dimension %d×%d", rows, cols))
	}
	return &COO{rows: rows, cols: cols}
}

// Add accumulates v into entry (i, j).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: COO.Add index (%d,%d) out of %d×%d", i, j, c.rows, c.cols))
	}
	if v == 0 {
		return
	}
	c.i = append(c.i, i)
	c.j = append(c.j, j)
	c.v = append(c.v, v)
}

// NNZ returns the number of accumulated entries (before deduplication).
func (c *COO) NNZ() int { return len(c.v) }

// ToCSR converts to CSR, summing duplicates and dropping entries that
// cancelled to exactly zero.
func (c *COO) ToCSR() *CSR {
	type ent struct {
		i, j int
		v    float64
	}
	ents := make([]ent, len(c.v))
	for k := range c.v {
		ents[k] = ent{c.i[k], c.j[k], c.v[k]}
	}
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].i != ents[b].i {
			return ents[a].i < ents[b].i
		}
		return ents[a].j < ents[b].j
	})
	out := &CSR{Rows: c.rows, Cols: c.cols, RowPtr: make([]int, c.rows+1)}
	for k := 0; k < len(ents); {
		i, j := ents[k].i, ents[k].j
		var s float64
		for k < len(ents) && ents[k].i == i && ents[k].j == j {
			s += ents[k].v
			k++
		}
		if s != 0 {
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, s)
			out.RowPtr[i+1] = len(out.Val)
		}
	}
	// Fill row pointers for empty rows.
	for i := 1; i <= c.rows; i++ {
		if out.RowPtr[i] < out.RowPtr[i-1] {
			out.RowPtr[i] = out.RowPtr[i-1]
		}
	}
	return out
}
