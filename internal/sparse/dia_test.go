package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDIARoundTrip(t *testing.T) {
	a := small()
	d := MustDIAFromCSR(a)
	back := d.ToCSR()
	if back.NNZ() != a.NNZ() {
		t.Fatalf("round trip nnz %d vs %d", back.NNZ(), a.NNZ())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if back.At(i, j) != a.At(i, j) {
				t.Fatalf("round trip (%d,%d): %v vs %v", i, j, back.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestDIAOffsetsTridiagonal(t *testing.T) {
	d := MustDIAFromCSR(small())
	want := []int{-1, 0, 1}
	if len(d.Offsets) != 3 {
		t.Fatalf("Offsets = %v", d.Offsets)
	}
	for i, o := range want {
		if d.Offsets[i] != o {
			t.Fatalf("Offsets = %v, want %v", d.Offsets, want)
		}
	}
}

func TestDIAMulVecMatchesCSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		a := randCSR(rng, n, 3)
		d := MustDIAFromCSR(a)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ya := a.MulVec(x)
		yd := d.MulVec(x)
		for i := range ya {
			if math.Abs(ya[i]-yd[i]) > 1e-12*(1+math.Abs(ya[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDIAOpLengths(t *testing.T) {
	d := MustDIAFromCSR(small())
	lens := d.OpLengths()
	want := []int{2, 3, 2} // offsets -1, 0, +1 on a 3×3
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("OpLengths = %v, want %v", lens, want)
		}
	}
}

func TestDiagRange(t *testing.T) {
	cases := []struct {
		n, d, lo, hi int
	}{
		{5, 0, 0, 5},
		{5, 2, 0, 3},
		{5, -2, 2, 5},
		{5, 5, 0, 0},
		{5, -7, 7, 7},
	}
	for _, c := range cases {
		lo, hi := diagRange(c.n, c.d)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("diagRange(%d,%d) = [%d,%d), want [%d,%d)", c.n, c.d, lo, hi, c.lo, c.hi)
		}
	}
}

func TestDIANonSquareErrors(t *testing.T) {
	c := NewCOO(2, 3)
	c.Add(0, 0, 1)
	if _, err := NewDIAFromCSR(c.ToCSR()); err == nil {
		t.Fatal("expected an error for a non-square matrix")
	}
}

func TestMustDIAFromCSRNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewCOO(2, 3)
	c.Add(0, 0, 1)
	MustDIAFromCSR(c.ToCSR())
}
