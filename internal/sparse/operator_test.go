package sparse

import (
	"math/rand"
	"testing"
)

func TestOperatorDims(t *testing.T) {
	a := small() // 3×3 tridiagonal
	var op Operator = a
	if r, c := op.Dims(); r != 3 || c != 3 {
		t.Fatalf("CSR Dims = %d×%d", r, c)
	}
	d := MustDIAFromCSR(a)
	op = d
	if r, c := op.Dims(); r != 3 || c != 3 {
		t.Fatalf("DIA Dims = %d×%d", r, c)
	}
	rect := NewCOO(2, 5)
	rect.Add(1, 4, 1)
	if r, c := rect.ToCSR().Dims(); r != 2 || c != 5 {
		t.Fatalf("rectangular Dims = %d×%d", r, c)
	}
}

func TestDIADiagMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randSquareCSR(rng, 40, 0.2)
	d := MustDIAFromCSR(a)
	want := a.Diag()
	got := d.Diag()
	if len(got) != len(want) {
		t.Fatalf("Diag length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Diag[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDIADiagAbsentMainDiagonal(t *testing.T) {
	c := NewCOO(3, 3)
	c.Add(0, 1, 2)
	c.Add(2, 0, 5)
	d := MustDIAFromCSR(c.ToCSR())
	for i, v := range d.Diag() {
		if v != 0 {
			t.Fatalf("Diag[%d] = %v, want 0 (no main diagonal stored)", i, v)
		}
	}
}

func TestDiagStats(t *testing.T) {
	// small() is 3×3 tridiagonal: offsets {-1, 0, 1}, bandwidth 1.
	nd, bw := small().DiagStats()
	if nd != 3 || bw != 1 {
		t.Fatalf("DiagStats = (%d, %d), want (3, 1)", nd, bw)
	}
	c := NewCOO(6, 6)
	c.Add(0, 5, 1) // offset +5
	c.Add(5, 0, 1) // offset -5
	c.Add(2, 2, 1) // offset 0
	nd, bw = c.ToCSR().DiagStats()
	if nd != 3 || bw != 5 {
		t.Fatalf("DiagStats = (%d, %d), want (3, 5)", nd, bw)
	}
	if nd, bw := (&CSR{Rows: 4, Cols: 4, RowPtr: make([]int, 5)}).DiagStats(); nd != 0 || bw != 0 {
		t.Fatalf("empty DiagStats = (%d, %d), want (0, 0)", nd, bw)
	}
}

func TestDIAFillRatio(t *testing.T) {
	// Full tridiagonal except the two corner slots of the off-diagonals:
	// nnz = 3n−2 over 3 stored diagonals of length n.
	n := 10
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 2)
		if i > 0 {
			c.Add(i, i-1, -1)
			c.Add(i-1, i, -1)
		}
	}
	got := c.ToCSR().DIAFillRatio()
	want := float64(3*n-2) / float64(3*n)
	if got != want {
		t.Fatalf("DIAFillRatio = %v, want %v", got, want)
	}
}
