package sparse

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/vec"
)

// DIA stores a square matrix by diagonals — the layout Madsen, Rodrigue and
// Karush (1976) proposed for vector processors and the one the paper uses
// on the CYBER 203/205 (§3.1): after the multicolor ordering, K has the
// banded block structure of eq. (3.2) and the matrix–vector product becomes
// a handful of long vector triads, one per stored diagonal.
//
// Diagonal with offset d holds elements A[i, i+d]. Each diagonal is stored
// in a slice of length N indexed by row i; positions outside the matrix are
// zero padding. That wastes a little memory but keeps every vector operand
// the same length, which is precisely the contiguous-storage behaviour of
// the CYBER that the paper designs around.
type DIA struct {
	N       int
	Offsets []int       // sorted ascending
	Diags   [][]float64 // Diags[k][i] = A[i, i+Offsets[k]]
}

// NewDIAFromCSR converts a square CSR matrix to diagonal storage. Every
// distinct offset that contains a nonzero becomes a stored diagonal. A
// non-square matrix is an error, not a panic: the conversion is reachable
// from service request bodies, and a malformed request must fail the
// request, never the daemon.
func NewDIAFromCSR(a *CSR) (*DIA, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: DIA needs a square matrix, got %d×%d", a.Rows, a.Cols)
	}
	n := a.Rows
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			seen[a.ColIdx[k]-i] = true
		}
	}
	offsets := make([]int, 0, len(seen))
	for d := range seen {
		offsets = append(offsets, d)
	}
	sort.Ints(offsets)
	idx := make(map[int]int, len(offsets))
	for k, d := range offsets {
		idx[d] = k
	}
	diags := make([][]float64, len(offsets))
	for k := range diags {
		diags[k] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := a.ColIdx[k] - i
			diags[idx[d]][i] = a.Val[k]
		}
	}
	return &DIA{N: n, Offsets: offsets, Diags: diags}, nil
}

// MustDIAFromCSR is NewDIAFromCSR for matrices known square by
// construction; it panics on the error a caller cannot meaningfully handle.
func MustDIAFromCSR(a *CSR) *DIA {
	d, err := NewDIAFromCSR(a)
	if err != nil {
		panic(err)
	}
	return d
}

// NumDiags returns the number of stored diagonals.
func (a *DIA) NumDiags() int { return len(a.Offsets) }

// MulVecTo computes dst = A·x one diagonal at a time. Each diagonal d
// contributes dst[i] += Diag[i] * x[i+d] over the valid range — on the
// CYBER this is a single linked-triad vector instruction of length
// N − |d|; the vectorsim package charges time accordingly.
func (a *DIA) MulVecTo(dst, x []float64) {
	if len(x) != a.N || len(dst) != a.N {
		panic(fmt.Sprintf("sparse: DIA.MulVecTo dims: N=%d, x %d, dst %d", a.N, len(x), len(dst)))
	}
	for i := range dst {
		dst[i] = 0
	}
	for k, d := range a.Offsets {
		diag := a.Diags[k]
		lo, hi := diagRange(a.N, d)
		for i := lo; i < hi; i++ {
			dst[i] += diag[i] * x[i+d]
		}
	}
}

// MulVec returns A·x as a new vector.
func (a *DIA) MulVec(x []float64) []float64 {
	y := make([]float64, a.N)
	a.MulVecTo(y, x)
	return y
}

// ParMulVecTo computes dst = A·x with rows partitioned across up to
// `workers` goroutines via vec.ParRange. Each goroutine owns a contiguous
// row block for every diagonal, so the result is bitwise identical to the
// serial product; workers == 1 takes the serial allocation-free path.
func (a *DIA) ParMulVecTo(dst, x []float64, workers int) {
	if workers == 1 {
		a.MulVecTo(dst, x)
		return
	}
	if len(x) != a.N || len(dst) != a.N {
		panic(fmt.Sprintf("sparse: DIA.ParMulVecTo dims: N=%d, x %d, dst %d", a.N, len(x), len(dst)))
	}
	vec.ParRange(a.N, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = 0
		}
		for k, d := range a.Offsets {
			diag := a.Diags[k]
			dlo, dhi := diagRange(a.N, d)
			dlo, dhi = max(dlo, lo), min(dhi, hi)
			for i := dlo; i < dhi; i++ {
				dst[i] += diag[i] * x[i+d]
			}
		}
	})
}

// MulMatTo computes dst = A·X for a column-block multivector X: every
// stored diagonal is traversed once and its triad applied to all s columns
// — the matrix–multivector form of the Madsen–Rodrigue–Karush layout, with
// the vector operands s times longer in aggregate. Per-column arithmetic
// order matches MulVecTo exactly. dst must not alias x.
func (a *DIA) MulMatTo(dst, x *vec.Multi) {
	if x.N != a.N || dst.N != a.N || dst.S != x.S {
		panic(fmt.Sprintf("sparse: DIA.MulMatTo dims: N=%d, x %d×%d, dst %d×%d",
			a.N, x.N, x.S, dst.N, dst.S))
	}
	a.mulMatRange(dst, x, 0, a.N)
}

// mulMatRange runs the block product over the row range [lo, hi).
func (a *DIA) mulMatRange(dst, x *vec.Multi, lo, hi int) {
	for j := 0; j < dst.S; j++ {
		c := dst.Col(j)
		for i := lo; i < hi; i++ {
			c[i] = 0
		}
	}
	for k, d := range a.Offsets {
		diag := a.Diags[k]
		dlo, dhi := diagRange(a.N, d)
		dlo, dhi = max(dlo, lo), min(dhi, hi)
		for j := 0; j < x.S; j++ {
			xc, dc := x.Col(j), dst.Col(j)
			for i := dlo; i < dhi; i++ {
				dc[i] += diag[i] * xc[i+d]
			}
		}
	}
}

// ParMulMatTo is MulMatTo with rows partitioned across up to `workers`
// goroutines; bitwise identical to the serial product, and serial (and
// allocation-free) at workers == 1.
func (a *DIA) ParMulMatTo(dst, x *vec.Multi, workers int) {
	if workers == 1 {
		a.MulMatTo(dst, x)
		return
	}
	if x.N != a.N || dst.N != a.N || dst.S != x.S {
		panic(fmt.Sprintf("sparse: DIA.ParMulMatTo dims: N=%d, x %d×%d, dst %d×%d",
			a.N, x.N, x.S, dst.N, dst.S))
	}
	vec.ParRange(a.N, workers, func(lo, hi int) {
		a.mulMatRange(dst, x, lo, hi)
	})
}

// OpLengths returns the vector length of the triad performed for each
// stored diagonal — the quantity that determines CYBER efficiency.
func (a *DIA) OpLengths() []int {
	out := make([]int, len(a.Offsets))
	for k, d := range a.Offsets {
		lo, hi := diagRange(a.N, d)
		out[k] = hi - lo
	}
	return out
}

// ToCSR converts back to CSR (dropping explicit zeros).
func (a *DIA) ToCSR() *CSR {
	c := NewCOO(a.N, a.N)
	for k, d := range a.Offsets {
		lo, hi := diagRange(a.N, d)
		for i := lo; i < hi; i++ {
			if v := a.Diags[k][i]; v != 0 {
				c.Add(i, i+d, v)
			}
		}
	}
	return c.ToCSR()
}

// diagRange returns the half-open row range [lo, hi) over which diagonal d
// lies inside an n×n matrix (shared with the interleaved DIA kernels).
func diagRange(n, d int) (lo, hi int) {
	return kernel.DiagRange(n, d)
}
