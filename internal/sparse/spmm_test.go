package sparse

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// randRectCSR builds a random rows×cols matrix with the given fill density.
func randRectCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	c := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				c.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return c.ToCSR()
}

// randSquareCSR builds a random square matrix with a guaranteed nonzero
// diagonal (so the DIA conversion has substance).
func randSquareCSR(rng *rand.Rand, n int, density float64) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1+rng.Float64())
		for j := 0; j < n; j++ {
			if j != i && rng.Float64() < density {
				c.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return c.ToCSR()
}

// TestCSRMulMatMatchesMulVec is the property test: for random matrices and
// random multivectors, one SpMM equals s independent SpMVs, exactly.
func TestCSRMulMatMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		s := 1 + rng.Intn(9)
		a := randRectCSR(rng, rows, cols, 0.2)
		x := vec.NewMulti(cols, s)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		dst := vec.NewMulti(rows, s)
		a.MulMatTo(dst, x)
		for j := 0; j < s; j++ {
			want := a.MulVec(x.Col(j))
			for i := range want {
				if dst.Col(j)[i] != want[i] {
					t.Fatalf("trial %d: CSR SpMM col %d row %d: %g != %g", trial, j, i, dst.Col(j)[i], want[i])
				}
			}
		}
		par := vec.NewMulti(rows, s)
		a.ParMulMatTo(par, x, 4)
		for i := range par.Data {
			if par.Data[i] != dst.Data[i] {
				t.Fatalf("trial %d: ParMulMatTo differs from MulMatTo at %d", trial, i)
			}
		}
	}
}

// TestDIAMulMatMatchesMulVec is the same property over diagonal storage.
func TestDIAMulMatMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		s := 1 + rng.Intn(9)
		a := MustDIAFromCSR(randSquareCSR(rng, n, 0.15))
		x := vec.NewMulti(n, s)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		dst := vec.NewMulti(n, s)
		a.MulMatTo(dst, x)
		for j := 0; j < s; j++ {
			want := a.MulVec(x.Col(j))
			for i := range want {
				if dst.Col(j)[i] != want[i] {
					t.Fatalf("trial %d: DIA SpMM col %d row %d: %g != %g", trial, j, i, dst.Col(j)[i], want[i])
				}
			}
		}
		par := vec.NewMulti(n, s)
		a.ParMulMatTo(par, x, 4)
		for i := range par.Data {
			if par.Data[i] != dst.Data[i] {
				t.Fatalf("trial %d: DIA ParMulMatTo differs at %d", trial, i)
			}
		}
	}
}

// TestParSpMMLarge crosses vec's parallel-length threshold so the chunked
// goroutine paths (not the serial fallback) are what run.
func TestParSpMMLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, s := 6000, 4
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 4+rng.Float64())
		if i > 0 {
			c.Add(i, i-1, -1)
		}
		if i+1 < n {
			c.Add(i, i+1, -1)
		}
	}
	a := c.ToCSR()
	x := vec.NewMulti(n, s)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	serial := vec.NewMulti(n, s)
	a.MulMatTo(serial, x)
	par := vec.NewMulti(n, s)
	a.ParMulMatTo(par, x, 4)
	for i := range par.Data {
		if par.Data[i] != serial.Data[i] {
			t.Fatalf("CSR ParMulMatTo (chunked) differs at %d", i)
		}
	}

	d := MustDIAFromCSR(a)
	dSerial := vec.NewMulti(n, s)
	d.MulMatTo(dSerial, x)
	dPar := vec.NewMulti(n, s)
	d.ParMulMatTo(dPar, x, 4)
	for i := range dPar.Data {
		if dPar.Data[i] != dSerial.Data[i] {
			t.Fatalf("DIA ParMulMatTo (chunked) differs at %d", i)
		}
	}
	v := make([]float64, n)
	d.ParMulVecTo(v, x.Col(0), 4)
	for i := range v {
		if v[i] != dSerial.Col(0)[i] {
			t.Fatalf("DIA ParMulVecTo (chunked) differs at %d", i)
		}
	}
}

// TestDIAParMulVec checks the new DIA row-parallel SpMV against the serial
// kernel (bitwise, since each row's accumulation order is unchanged).
func TestDIAParMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := MustDIAFromCSR(randSquareCSR(rng, 200, 0.1))
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := a.MulVec(x)
	got := make([]float64, 200)
	a.ParMulVecTo(got, x, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DIA ParMulVecTo row %d: %g != %g", i, got[i], want[i])
		}
	}
	if math.IsNaN(vec.Norm2(got)) {
		t.Fatal("NaN in product")
	}
}
