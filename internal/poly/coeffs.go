package poly

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// Alphas holds the coefficients α₀..α_{m−1} of a parametrized m-step
// preconditioner together with the interval they were computed for.
type Alphas struct {
	Coeffs []float64 // α₀ .. α_{m−1}
	Lo, Hi float64   // interval [λ₁, λₙ] targeted
	Kind   string    // "ones", "least-squares", "chebyshev"
}

// M returns the number of steps m = len(Coeffs).
func (a Alphas) M() int { return len(a.Coeffs) }

// Ones returns the unparametrized coefficients (αᵢ = 1), under which the
// m-step preconditioner is plain m steps of the stationary method:
// q(λ) = 1 − (1−λ)^m.
func Ones(m int) Alphas {
	if m < 1 {
		panic(fmt.Sprintf("poly: Ones needs m >= 1, got %d", m))
	}
	c := make([]float64, m)
	for i := range c {
		c[i] = 1
	}
	return Alphas{Coeffs: c, Lo: 0, Hi: 1, Kind: "ones"}
}

// Q returns q(λ) = λ · Σ αᵢ (1−λ)ⁱ, the polynomial whose values at the
// eigenvalues of P⁻¹K are the eigenvalues of the preconditioned matrix
// M_m⁻¹K.
func (a Alphas) Q() Poly {
	q := Poly{}
	basis := Poly{1} // (1−λ)ⁱ
	for _, ai := range a.Coeffs {
		q = q.Add(basis.Scale(ai))
		basis = basis.Mul(OneMinusX)
	}
	return Poly{0, 1}.Mul(q) // multiply by λ
}

// ConditionBound returns the bound κ(M_m⁻¹K) ≤ max q / min q over [lo, hi].
// It returns +Inf if q is not strictly positive on the interval (the
// preconditioner would not be positive definite there).
func (a Alphas) ConditionBound(lo, hi float64) float64 {
	qlo, qhi := a.Q().MinMaxOn(lo, hi, 4000)
	if qlo <= 0 {
		return math.Inf(1)
	}
	return qhi / qlo
}

// PositiveOn reports whether q(λ) > 0 for all λ in [lo, hi] (sampled), the
// paper's §2.2 requirement for M_m to be positive definite.
func (a Alphas) PositiveOn(lo, hi float64) bool {
	qlo, _ := a.Q().MinMaxOn(lo, hi, 4000)
	return qlo > 0
}

// LeastSquares computes the α minimizing ∫_{lo}^{hi} (1 − q(λ))² dλ with
// q(λ) = λ Σ αᵢ(1−λ)ⁱ, the Johnson–Micchelli–Paul least-squares criterion
// the paper uses for Table 1. The normal equations are formed with exact
// polynomial integration and solved densely.
func LeastSquares(m int, lo, hi float64) (Alphas, error) {
	return LeastSquaresWeighted(m, lo, hi, Poly{1})
}

// LeastSquaresWeighted minimizes ∫ w(λ)·(1 − q(λ))² dλ for a polynomial
// weight w ≥ 0 on [lo, hi]. Johnson, Micchelli and Paul consider the
// weights w(λ) = λ^μ; w = λ (Poly{0, 1}) emphasizes the upper end of the
// spectrum and corresponds to error minimization in the K̂-energy norm.
func LeastSquaresWeighted(m int, lo, hi float64, weight Poly) (Alphas, error) {
	if m < 1 {
		return Alphas{}, fmt.Errorf("poly: LeastSquares needs m >= 1, got %d", m)
	}
	if !(lo < hi) || lo < 0 {
		return Alphas{}, fmt.Errorf("poly: LeastSquares needs 0 <= lo < hi, got [%g, %g]", lo, hi)
	}
	if len(weight.Trim()) == 0 {
		return Alphas{}, fmt.Errorf("poly: zero weight polynomial")
	}
	if wlo, _ := weight.MinMaxOn(lo, hi, 2000); wlo < 0 {
		return Alphas{}, fmt.Errorf("poly: weight is negative on [%g, %g]", lo, hi)
	}
	// Optimize q(λ) = λ·p(λ) with p expressed in the Chebyshev basis of
	// [lo, hi]: φᵢ(λ) = λ·Tᵢ(s(λ)), s(λ) = (2λ−hi−lo)/(hi−lo). The Gram
	// matrix in this basis stays well conditioned up to the m ≈ 10 the
	// paper sweeps, unlike the Hilbert-like (1−λ)-power basis.
	s := Poly{-(hi + lo) / (hi - lo), 2 / (hi - lo)}
	basis := make([]Poly, m)
	for i := 0; i < m; i++ {
		basis[i] = Poly{0, 1}.Mul(Chebyshev(i).Compose(s))
	}
	// Gram matrix Aᵢⱼ = ∫ w·φᵢφⱼ, rhs cᵢ = ∫ w·φᵢ·1 (exact integration).
	A := la.NewMatrix(m, m)
	c := make([]float64, m)
	for i := 0; i < m; i++ {
		c[i] = weight.Mul(basis[i]).Integrate(lo, hi)
		for j := i; j < m; j++ {
			v := weight.Mul(basis[i].Mul(basis[j])).Integrate(lo, hi)
			A.Set(i, j, v)
			A.Set(j, i, v)
		}
	}
	coef, err := la.Solve(A, c)
	if err != nil {
		return Alphas{}, fmt.Errorf("poly: least-squares normal equations: %w", err)
	}
	// p(λ) = Σ coefᵢ·Tᵢ(s(λ)) in the power basis, then α from
	// Σ αᵢ(1−λ)ⁱ = p(λ) by composing with 1−t.
	p := Poly{}
	for i := 0; i < m; i++ {
		p = p.Add(Chebyshev(i).Compose(s).Scale(coef[i]))
	}
	alphaPoly := p.Compose(OneMinusX)
	alpha := make([]float64, m)
	copy(alpha, alphaPoly)
	return Alphas{Coeffs: alpha, Lo: lo, Hi: hi, Kind: "least-squares"}, nil
}

// ChebyshevMinMax computes the α minimizing max_{[lo,hi]} |1 − q(λ)| —
// the min-max criterion of §2.2. The optimal residual is the scaled shifted
// Chebyshev polynomial
//
//	1 − q(λ) = T_m(μ(λ)) / T_m(μ₀),  μ(λ) = (hi+lo−2λ)/(hi−lo),  μ₀ = μ(0),
//
// which satisfies q(0) = 0 exactly, so q/λ is a polynomial of degree m−1
// and converts to the (1−λ)-power basis by composition.
func ChebyshevMinMax(m int, lo, hi float64) (Alphas, error) {
	if m < 1 {
		return Alphas{}, fmt.Errorf("poly: ChebyshevMinMax needs m >= 1, got %d", m)
	}
	if !(0 < lo && lo < hi) {
		return Alphas{}, fmt.Errorf("poly: ChebyshevMinMax needs 0 < lo < hi, got [%g, %g]", lo, hi)
	}
	tm := Chebyshev(m)
	// μ(λ) = (hi+lo)/(hi−lo) − 2/(hi−lo)·λ
	mu := Poly{(hi + lo) / (hi - lo), -2 / (hi - lo)}
	mu0 := mu.Eval(0)
	denom := tm.Eval(mu0)
	r := tm.Compose(mu).Scale(1 / denom) // residual polynomial, r(0) = 1
	q := Poly{1}.Sub(r)                  // q(0) = 0
	p, rem := q.DivideByX()
	if math.Abs(rem) > 1e-9 {
		return Alphas{}, fmt.Errorf("poly: Chebyshev construction lost q(0)=0: remainder %g", rem)
	}
	// p is in powers of λ; we need Σ αᵢ(1−λ)ⁱ = p(λ), i.e. α are the power
	// coefficients of p(1−t).
	alphaPoly := p.Compose(OneMinusX)
	alpha := make([]float64, m)
	copy(alpha, alphaPoly)
	return Alphas{Coeffs: alpha, Lo: lo, Hi: hi, Kind: "chebyshev"}, nil
}

// PaperTable1 returns the α values printed in the paper's Table 1 for the
// m-step SSOR PCG method (m = 2, 3, 4), as archived in the NASA report.
// They are reproduced verbatim for comparison output; our own least-squares
// solve over the estimated spectral interval is what the solver actually
// uses.
func PaperTable1() map[int][]float64 {
	return map[int][]float64{
		2: {1.00, 5.00},
		3: {1.00, -2.00, 15.00},
		4: {1.00, 7.00, -24.50, 31.50},
	}
}
