package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvalHorner(t *testing.T) {
	p := Poly{1, -2, 3} // 1 - 2x + 3x²
	if got := p.Eval(2); got != 9 {
		t.Fatalf("Eval(2) = %v, want 9", got)
	}
	if got := (Poly{}).Eval(5); got != 0 {
		t.Fatalf("zero poly Eval = %v", got)
	}
}

func TestDegreeAndTrim(t *testing.T) {
	p := Poly{1, 2, 0, 0}
	if p.Degree() != 1 {
		t.Fatalf("Degree = %d, want 1", p.Degree())
	}
	if len(p.Trim()) != 2 {
		t.Fatalf("Trim len = %d, want 2", len(p.Trim()))
	}
	if (Poly{}).Degree() != -1 {
		t.Fatal("zero poly degree should be -1")
	}
}

func TestAddSubScale(t *testing.T) {
	p := Poly{1, 2}
	q := Poly{0, 1, 3}
	s := p.Add(q)
	want := Poly{1, 3, 3}
	if !s.Equal(want, 0) {
		t.Fatalf("Add = %v, want %v", s, want)
	}
	d := p.Sub(q)
	if !d.Equal(Poly{1, 1, -3}, 0) {
		t.Fatalf("Sub = %v", d)
	}
	if !p.Scale(2).Equal(Poly{2, 4}, 0) {
		t.Fatalf("Scale = %v", p.Scale(2))
	}
}

func TestMul(t *testing.T) {
	// (1+x)(1-x) = 1-x²
	p := Poly{1, 1}.Mul(Poly{1, -1})
	if !p.Equal(Poly{1, 0, -1}, 0) {
		t.Fatalf("Mul = %v", p)
	}
	if got := (Poly{1, 2}).Mul(Poly{}); len(got.Trim()) != 0 {
		t.Fatalf("Mul by zero = %v", got)
	}
}

func TestCompose(t *testing.T) {
	// p(x) = x², q(x) = 1-x → p(q) = 1 - 2x + x²
	p := Poly{0, 0, 1}
	got := p.Compose(OneMinusX)
	if !got.Equal(Poly{1, -2, 1}, 1e-15) {
		t.Fatalf("Compose = %v", got)
	}
}

func TestComposeIdentityRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		p := make(Poly, n)
		for i := range p {
			p[i] = rng.NormFloat64()
		}
		// p(1-(1-x)) == p
		back := p.Compose(OneMinusX).Compose(OneMinusX)
		return back.Equal(p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDerivAntiDeriv(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x²
	d := p.Deriv()
	if !d.Equal(Poly{2, 6}, 0) {
		t.Fatalf("Deriv = %v", d)
	}
	ad := d.AntiDeriv()
	if !ad.Equal(Poly{0, 2, 3}, 1e-15) {
		t.Fatalf("AntiDeriv = %v", ad)
	}
	if (Poly{5}).Deriv().Degree() != -1 {
		t.Fatal("constant derivative should be zero poly")
	}
}

func TestIntegrate(t *testing.T) {
	// ∫₀¹ x² dx = 1/3
	got := Poly{0, 0, 1}.Integrate(0, 1)
	if math.Abs(got-1.0/3) > 1e-15 {
		t.Fatalf("Integrate = %v, want 1/3", got)
	}
	// Reversed limits negate.
	if math.Abs((Poly{1}).Integrate(1, 0)+1) > 1e-15 {
		t.Fatal("reversed limits")
	}
}

func TestDivideByX(t *testing.T) {
	q, rem := Poly{0, 1, 2}.DivideByX()
	if rem != 0 || !q.Equal(Poly{1, 2}, 0) {
		t.Fatalf("DivideByX = %v rem %v", q, rem)
	}
	_, rem = Poly{3, 1}.DivideByX()
	if rem != 3 {
		t.Fatalf("remainder = %v, want 3", rem)
	}
}

func TestChebyshevKnown(t *testing.T) {
	cases := []struct {
		n    int
		want Poly
	}{
		{0, Poly{1}},
		{1, Poly{0, 1}},
		{2, Poly{-1, 0, 2}},
		{3, Poly{0, -3, 0, 4}},
		{4, Poly{1, 0, -8, 0, 8}},
	}
	for _, c := range cases {
		got := Chebyshev(c.n)
		if !got.Equal(c.want, 1e-14) {
			t.Fatalf("T_%d = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestChebyshevEquioscillation(t *testing.T) {
	// |T_n(x)| <= 1 on [-1,1] with T_n(1) = 1.
	for n := 1; n <= 8; n++ {
		tn := Chebyshev(n)
		lo, hi := tn.MinMaxOn(-1, 1, 2000)
		if hi > 1+1e-9 || lo < -1-1e-9 {
			t.Fatalf("T_%d range [%v, %v] escapes [-1,1]", n, lo, hi)
		}
		if math.Abs(tn.Eval(1)-1) > 1e-12 {
			t.Fatalf("T_%d(1) = %v", n, tn.Eval(1))
		}
	}
}

func TestMinMaxOn(t *testing.T) {
	// x² on [-1, 2]: min 0 at 0, max 4 at 2.
	lo, hi := Poly{0, 0, 1}.MinMaxOn(-1, 2, 3000)
	if math.Abs(lo) > 1e-6 || math.Abs(hi-4) > 1e-9 {
		t.Fatalf("MinMaxOn = [%v, %v]", lo, hi)
	}
}

func TestString(t *testing.T) {
	if s := (Poly{1, 0, -2}).String(); s == "" {
		t.Fatal("empty String")
	}
	if s := (Poly{}).String(); s != "0" {
		t.Fatalf("zero poly String = %q", s)
	}
}

// Property: Mul is consistent with Eval: (pq)(x) = p(x)q(x).
func TestMulEvalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPoly(rng, 1+rng.Intn(5))
		q := randPoly(rng, 1+rng.Intn(5))
		x := rng.NormFloat64()
		lhs := p.Mul(q).Eval(x)
		rhs := p.Eval(x) * q.Eval(x)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compose is consistent with Eval: (p∘q)(x) = p(q(x)).
func TestComposeEvalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPoly(rng, 1+rng.Intn(4))
		q := randPoly(rng, 1+rng.Intn(3))
		x := rng.NormFloat64() * 0.5
		lhs := p.Compose(q).Eval(x)
		rhs := p.Eval(q.Eval(x))
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randPoly(rng *rand.Rand, n int) Poly {
	p := make(Poly, n)
	for i := range p {
		p[i] = rng.NormFloat64()
	}
	return p
}
