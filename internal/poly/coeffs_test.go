package poly

import (
	"math"
	"testing"
)

func TestOnesQIsOneMinusPower(t *testing.T) {
	// With αᵢ = 1, q(λ) = 1 − (1−λ)^m.
	for m := 1; m <= 6; m++ {
		a := Ones(m)
		q := a.Q()
		for _, lam := range []float64{0, 0.1, 0.5, 0.9, 1, 1.7} {
			want := 1 - math.Pow(1-lam, float64(m))
			if got := q.Eval(lam); math.Abs(got-want) > 1e-12 {
				t.Fatalf("m=%d λ=%g: q=%v want %v", m, lam, got, want)
			}
		}
	}
}

func TestOnesPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m=0")
		}
	}()
	Ones(0)
}

func TestQZeroAtOrigin(t *testing.T) {
	// q(0) = 0 for any coefficients: M⁻¹K annihilates nothing it shouldn't.
	a := Alphas{Coeffs: []float64{2, -1, 0.5}}
	if got := a.Q().Eval(0); got != 0 {
		t.Fatalf("q(0) = %v, want 0", got)
	}
}

func TestLeastSquaresImprovesOverOnes(t *testing.T) {
	lo, hi := 0.05, 1.0
	for _, m := range []int{2, 3, 4, 5} {
		ls, err := LeastSquares(m, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		ones := Ones(m)
		// Compare the L² residual ∫(1−q)² of both choices; LS must win.
		resLS := residualL2(ls, lo, hi)
		resOnes := residualL2(ones, lo, hi)
		if resLS > resOnes+1e-12 {
			t.Fatalf("m=%d: LS residual %g > ones residual %g", m, resLS, resOnes)
		}
		if !ls.PositiveOn(lo, hi) {
			t.Fatalf("m=%d: least-squares q not positive on [%g,%g]", m, lo, hi)
		}
	}
}

func residualL2(a Alphas, lo, hi float64) float64 {
	r := Poly{1}.Sub(a.Q())
	return r.Mul(r).Integrate(lo, hi)
}

func TestLeastSquaresIsStationary(t *testing.T) {
	// Perturbing any coefficient must not lower the residual (first-order
	// optimality of the normal equations).
	lo, hi := 0.1, 1.0
	ls, err := LeastSquares(3, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	base := residualL2(ls, lo, hi)
	for i := range ls.Coeffs {
		for _, d := range []float64{1e-4, -1e-4} {
			p := ls
			p.Coeffs = append([]float64{}, ls.Coeffs...)
			p.Coeffs[i] += d
			if residualL2(p, lo, hi) < base-1e-12 {
				t.Fatalf("perturbing α[%d] by %g lowered residual", i, d)
			}
		}
	}
}

func TestLeastSquaresM1(t *testing.T) {
	// m=1: q(λ) = α₀λ; minimizing ∫(1−α₀λ)² over [lo,hi] has closed form
	// α₀ = ∫λ / ∫λ².
	lo, hi := 0.2, 1.0
	ls, err := LeastSquares(1, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	num := Poly{0, 1}.Integrate(lo, hi)
	den := Poly{0, 0, 1}.Integrate(lo, hi)
	want := num / den
	if math.Abs(ls.Coeffs[0]-want) > 1e-12 {
		t.Fatalf("α₀ = %v, want %v", ls.Coeffs[0], want)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(0, 0, 1); err == nil {
		t.Fatal("expected error for m=0")
	}
	if _, err := LeastSquares(2, 1, 0.5); err == nil {
		t.Fatal("expected error for lo >= hi")
	}
	if _, err := LeastSquares(2, -0.5, 1); err == nil {
		t.Fatal("expected error for negative lo")
	}
}

func TestChebyshevMinMaxEquioscillates(t *testing.T) {
	lo, hi := 0.1, 1.0
	for _, m := range []int{2, 3, 4, 5} {
		ch, err := ChebyshevMinMax(m, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		// Residual 1−q must have max |·| = 1/T_m(μ₀) on [lo,hi].
		r := Poly{1}.Sub(ch.Q())
		rlo, rhi := r.MinMaxOn(lo, hi, 4000)
		mu0 := (hi + lo) / (hi - lo)
		want := 1 / Chebyshev(m).Eval(mu0)
		// Sampled extrema can miss the true ones by O(step²); 1e-6 is ample.
		if math.Abs(rhi-want) > 1e-6 || math.Abs(rlo+want) > 1e-6 {
			t.Fatalf("m=%d residual range [%v, %v], want ±%v", m, rlo, rhi, want)
		}
		if !ch.PositiveOn(lo, hi) {
			t.Fatalf("m=%d: Chebyshev q not positive", m)
		}
	}
}

func TestChebyshevBeatsOnesInMinMax(t *testing.T) {
	lo, hi := 0.05, 1.0
	for _, m := range []int{2, 3, 4} {
		ch, err := ChebyshevMinMax(m, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		worst := func(a Alphas) float64 {
			r := Poly{1}.Sub(a.Q())
			rlo, rhi := r.MinMaxOn(lo, hi, 4000)
			return math.Max(math.Abs(rlo), math.Abs(rhi))
		}
		if worst(ch) > worst(Ones(m))+1e-12 {
			t.Fatalf("m=%d: Chebyshev min-max residual %g worse than ones %g",
				m, worst(ch), worst(Ones(m)))
		}
	}
}

func TestChebyshevMinMaxErrors(t *testing.T) {
	if _, err := ChebyshevMinMax(0, 0.1, 1); err == nil {
		t.Fatal("expected error for m=0")
	}
	if _, err := ChebyshevMinMax(2, 0, 1); err == nil {
		t.Fatal("expected error for lo=0 (μ₀ undefined scaling)")
	}
	if _, err := ChebyshevMinMax(2, 1, 0.2); err == nil {
		t.Fatal("expected error for lo > hi")
	}
}

func TestConditionBoundImprovesWithM(t *testing.T) {
	// The whole point of the method: κ bound of the parametrized
	// preconditioned operator shrinks as m grows.
	lo, hi := 0.05, 1.0
	prev := math.Inf(1)
	for m := 1; m <= 6; m++ {
		ch, err := ChebyshevMinMax(m, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		k := ch.ConditionBound(lo, hi)
		if k >= prev+1e-9 {
			t.Fatalf("m=%d: condition bound %g did not improve on %g", m, k, prev)
		}
		prev = k
	}
}

func TestConditionBoundInfWhenIndefinite(t *testing.T) {
	// Unparametrized even m with spectrum reaching 2 ⇒ q(2) = 1−(−1)^m = 0:
	// the classic even-m Neumann-series failure.
	a := Ones(2)
	if got := a.ConditionBound(0.1, 2.0); !math.IsInf(got, 1) {
		t.Fatalf("expected +Inf condition bound, got %v", got)
	}
}

func TestPaperTable1Shape(t *testing.T) {
	tbl := PaperTable1()
	for m, coeffs := range tbl {
		if len(coeffs) != m {
			t.Fatalf("paper Table 1 m=%d has %d coefficients", m, len(coeffs))
		}
		if coeffs[0] != 1.00 {
			t.Fatalf("paper Table 1 m=%d: α₀ = %v, want 1.00", m, coeffs[0])
		}
	}
	if len(tbl) != 3 {
		t.Fatalf("paper Table 1 should list m=2,3,4; got %d entries", len(tbl))
	}
}
