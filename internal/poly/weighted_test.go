package poly

import (
	"math"
	"testing"
)

func TestWeightedUnitWeightMatchesPlain(t *testing.T) {
	lo, hi := 0.05, 1.0
	for _, m := range []int{2, 4} {
		a, err := LeastSquares(m, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		b, err := LeastSquaresWeighted(m, lo, hi, Poly{1})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Coeffs {
			if math.Abs(a.Coeffs[i]-b.Coeffs[i]) > 1e-10*(1+math.Abs(a.Coeffs[i])) {
				t.Fatalf("m=%d: plain %v vs unit weight %v", m, a.Coeffs, b.Coeffs)
			}
		}
	}
}

func TestWeightedStationarity(t *testing.T) {
	// First-order optimality in the weighted norm.
	lo, hi := 0.1, 1.0
	w := Poly{0, 1} // w(λ) = λ
	ws, err := LeastSquaresWeighted(3, lo, hi, w)
	if err != nil {
		t.Fatal(err)
	}
	res := func(a Alphas) float64 {
		r := Poly{1}.Sub(a.Q())
		return w.Mul(r.Mul(r)).Integrate(lo, hi)
	}
	base := res(ws)
	for i := range ws.Coeffs {
		for _, d := range []float64{1e-4, -1e-4} {
			p := ws
			p.Coeffs = append([]float64{}, ws.Coeffs...)
			p.Coeffs[i] += d
			if res(p) < base-1e-12 {
				t.Fatalf("perturbing α[%d] lowered weighted residual", i)
			}
		}
	}
	// The λ-weighted fit beats the unit-weight fit in the weighted norm.
	plain, err := LeastSquares(3, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if res(ws) > res(plain)+1e-12 {
		t.Fatalf("weighted fit (%g) worse than plain (%g) in its own norm", res(ws), res(plain))
	}
}

func TestWeightedStaysPositive(t *testing.T) {
	lo, hi := 0.05, 1.0
	for _, m := range []int{2, 3, 4, 6} {
		a, err := LeastSquaresWeighted(m, lo, hi, Poly{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if !a.PositiveOn(lo, hi) {
			t.Fatalf("m=%d λ-weighted q not positive", m)
		}
	}
}

func TestWeightedErrors(t *testing.T) {
	if _, err := LeastSquaresWeighted(2, 0.1, 1, Poly{}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := LeastSquaresWeighted(2, 0.1, 1, Poly{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := LeastSquaresWeighted(0, 0.1, 1, Poly{1}); err == nil {
		t.Fatal("m=0 accepted")
	}
}
