// Package poly implements the polynomial machinery behind the parametrized
// m-step preconditioner of Adams (1983), §2.2.
//
// The m-step preconditioner for a splitting K = P − Q with G = P⁻¹Q is
//
//	M_m⁻¹ = (α₀ I + α₁ G + … + α_{m−1} G^{m−1}) P⁻¹.
//
// Writing λ for an eigenvalue of P⁻¹K (so 1−λ is the matching eigenvalue of
// G), the eigenvalues of M_m⁻¹K are q(λ) with
//
//	q(λ) = λ · Σ_{i<m} αᵢ (1−λ)ⁱ.
//
// The coefficients αᵢ are chosen so q ≈ 1 on an interval [λ₁, λₙ] containing
// the spectrum of P⁻¹K, either in the continuous least-squares sense
// (Johnson–Micchelli–Paul, the paper's Table 1) or the Chebyshev min-max
// sense. This package provides exact polynomial arithmetic, exact
// integration for the least-squares normal equations, and the Chebyshev
// construction.
package poly

import (
	"fmt"
	"math"
)

// Poly is a polynomial in the power basis: Poly{c0, c1, c2} = c0 + c1·x + c2·x².
// The zero-length Poly is the zero polynomial.
type Poly []float64

// Trim removes trailing (near-)zero leading coefficients.
func (p Poly) Trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree; the zero polynomial has degree -1.
func (p Poly) Degree() int { return len(p.Trim()) - 1 }

// Eval evaluates p at x by Horner's rule.
func (p Poly) Eval(x float64) float64 {
	var s float64
	for i := len(p) - 1; i >= 0; i-- {
		s = s*x + p[i]
	}
	return s
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := max(len(p), len(q))
	out := make(Poly, n)
	copy(out, p)
	for i, qi := range q {
		out[i] += qi
	}
	return out
}

// Sub returns p − q.
func (p Poly) Sub(q Poly) Poly {
	n := max(len(p), len(q))
	out := make(Poly, n)
	copy(out, p)
	for i, qi := range q {
		out[i] -= qi
	}
	return out
}

// Scale returns a·p.
func (p Poly) Scale(a float64) Poly {
	out := make(Poly, len(p))
	for i, pi := range p {
		out[i] = a * pi
	}
	return out
}

// Mul returns p·q.
func (p Poly) Mul(q Poly) Poly {
	if len(p) == 0 || len(q) == 0 {
		return Poly{}
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, pi := range p {
		if pi == 0 {
			continue
		}
		for j, qj := range q {
			out[i+j] += pi * qj
		}
	}
	return out
}

// Compose returns p(q(x)).
func (p Poly) Compose(q Poly) Poly {
	out := Poly{}
	for i := len(p) - 1; i >= 0; i-- {
		out = out.Mul(q).Add(Poly{p[i]})
	}
	return out
}

// AntiDeriv returns the antiderivative with zero constant term.
func (p Poly) AntiDeriv() Poly {
	out := make(Poly, len(p)+1)
	for i, pi := range p {
		out[i+1] = pi / float64(i+1)
	}
	return out
}

// Deriv returns the derivative p′.
func (p Poly) Deriv() Poly {
	if len(p) <= 1 {
		return Poly{}
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = float64(i) * p[i]
	}
	return out
}

// Integrate returns ∫ₐᵇ p(x) dx exactly (up to roundoff).
func (p Poly) Integrate(a, b float64) float64 {
	ad := p.AntiDeriv()
	return ad.Eval(b) - ad.Eval(a)
}

// DivideByX returns p/x and the remainder p(0). The division is exact when
// p(0) = 0.
func (p Poly) DivideByX() (quot Poly, rem float64) {
	if len(p) == 0 {
		return Poly{}, 0
	}
	return append(Poly{}, p[1:]...), p[0]
}

// OneMinusX is the polynomial 1 − x, the eigenvalue map λ ↦ 1−λ from P⁻¹K
// to G = I − P⁻¹K.
var OneMinusX = Poly{1, -1}

// Chebyshev returns the degree-n Chebyshev polynomial of the first kind Tₙ
// in the power basis, built from the recurrence T₀=1, T₁=x,
// T_{k+1} = 2x·T_k − T_{k−1}.
func Chebyshev(n int) Poly {
	if n < 0 {
		panic(fmt.Sprintf("poly: Chebyshev degree %d < 0", n))
	}
	t0, t1 := Poly{1}, Poly{0, 1}
	if n == 0 {
		return t0
	}
	for k := 1; k < n; k++ {
		t2 := t1.Mul(Poly{0, 2}).Sub(t0)
		t0, t1 = t1, t2
	}
	return t1
}

// MinMaxOn samples p on [a, b] at `samples` evenly spaced points (plus the
// endpoints) and returns the observed minimum and maximum. With the smooth
// low-degree polynomials used here and samples ≥ 1000 this is accurate to
// plotting precision, which is all the validation code needs.
func (p Poly) MinMaxOn(a, b float64, samples int) (lo, hi float64) {
	if samples < 2 {
		samples = 2
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i <= samples; i++ {
		x := a + (b-a)*float64(i)/float64(samples)
		v := p.Eval(x)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Equal reports whether p and q agree coefficientwise within tol after
// trimming.
func (p Poly) Equal(q Poly, tol float64) bool {
	pt, qt := p.Trim(), q.Trim()
	n := max(len(pt), len(qt))
	for i := 0; i < n; i++ {
		var a, b float64
		if i < len(pt) {
			a = pt[i]
		}
		if i < len(qt) {
			b = qt[i]
		}
		if math.Abs(a-b) > tol {
			return false
		}
	}
	return true
}

func (p Poly) String() string {
	t := p.Trim()
	if len(t) == 0 {
		return "0"
	}
	s := ""
	for i := len(t) - 1; i >= 0; i-- {
		if t[i] == 0 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch i {
		case 0:
			s += fmt.Sprintf("%g", t[i])
		case 1:
			s += fmt.Sprintf("%g·x", t[i])
		default:
			s += fmt.Sprintf("%g·x^%d", t[i], i)
		}
	}
	return s
}
