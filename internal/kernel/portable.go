package kernel

import "math"

// The portable set: straightforward loops in the exact arithmetic order the
// rest of the library is specified against. Every accelerated variant must
// reproduce these bit for bit (see the package comment).

func portableDot(x, y []float64) float64 {
	var s float64
	for i, xi := range x {
		s += xi * y[i]
	}
	return s
}

func portableAxpy(a float64, x, y []float64) {
	for i, xi := range x {
		y[i] += a * xi
	}
}

func portableXpay(x []float64, a float64, y []float64) {
	for i, xi := range x {
		y[i] = xi + a*y[i]
	}
}

func portableGatherDot32(val []float64, idx []int32, x []float64) float64 {
	var s float64
	for k, v := range val {
		s += v * x[idx[k]]
	}
	return s
}

func portableInterleave(dst []float64, st int, src []float64, n, s int) {
	for i := 0; i < n; i++ {
		row := dst[i*st : i*st+s]
		for j := range row {
			row[j] = src[j*n+i]
		}
	}
}

func portableDeinterleave(dst []float64, n, s int, src []float64, st int) {
	for i := 0; i < n; i++ {
		row := src[i*st : i*st+s]
		for j, v := range row {
			dst[j*n+i] = v
		}
	}
}

func portableDotI(x, y []float64, st, n, s int, dst []float64) {
	for j := 0; j < s; j++ {
		dst[j] = 0
	}
	for i := 0; i < n; i++ {
		xr := x[i*st : i*st+s]
		yr := y[i*st : i*st+s]
		for j, xv := range xr {
			dst[j] += xv * yr[j]
		}
	}
}

func portableAxpyI(alphas []float64, x, y []float64, st, n, s int) {
	for i := 0; i < n; i++ {
		xr := x[i*st : i*st+s]
		yr := y[i*st : i*st+s]
		for j, xv := range xr {
			yr[j] += alphas[j] * xv
		}
	}
}

func portableXpayI(x []float64, betas []float64, y []float64, st, n, s int) {
	for i := 0; i < n; i++ {
		xr := x[i*st : i*st+s]
		yr := y[i*st : i*st+s]
		for j, xv := range xr {
			yr[j] = xv + betas[j]*yr[j]
		}
	}
}

// norm2I and normInfI walk each live column i-ascending at stride st —
// exactly vec.Norm2/NormInf's recurrences on a strided view. The norms run
// once per solve iteration against O(n·s) kernel work, so neither has an
// unrolled variant; both sets share these.
func norm2I(x []float64, st, n, s int, dst []float64) {
	for j := 0; j < s; j++ {
		var scale float64
		ssq := 1.0
		for i := 0; i < n; i++ {
			xi := x[i*st+j]
			if xi == 0 {
				continue
			}
			a := math.Abs(xi)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
		dst[j] = scale * math.Sqrt(ssq)
	}
}

func normInfI(x []float64, st, n, s int, dst []float64) {
	for j := 0; j < s; j++ {
		var m float64
		for i := 0; i < n; i++ {
			if a := math.Abs(x[i*st+j]); a > m {
				m = a
			}
		}
		dst[j] = m
	}
}

func portableSpMMCSRI(rowptr, colidx []int, val []float64, x []float64, xs int, dst []float64, ds int, lo, hi, s int) {
	for i := lo; i < hi; i++ {
		dr := dst[i*ds : i*ds+s]
		for j := range dr {
			dr[j] = 0
		}
		for k := rowptr[i]; k < rowptr[i+1]; k++ {
			v := val[k]
			xr := x[colidx[k]*xs : colidx[k]*xs+s]
			for j, xv := range xr {
				dr[j] += v * xv
			}
		}
	}
}

func portableSpMMDIAI(offsets []int, diags [][]float64, n int, x []float64, xs int, dst []float64, ds int, lo, hi, s int) {
	for i := lo; i < hi; i++ {
		dr := dst[i*ds : i*ds+s]
		for j := range dr {
			dr[j] = 0
		}
	}
	for k, d := range offsets {
		diag := diags[k]
		dlo, dhi := DiagRange(n, d)
		dlo, dhi = max(dlo, lo), min(dhi, hi)
		for i := dlo; i < dhi; i++ {
			v := diag[i]
			xr := x[(i+d)*xs : (i+d)*xs+s]
			dr := dst[i*ds : i*ds+s]
			for j, xv := range xr {
				dr[j] += v * xv
			}
		}
	}
}

// portableSweepCSRI is the interleaved Conrad–Wallach m-step sweep
// (Algorithm 2): forward color sweeps cache the lower block sums in y for
// the backward half-sweep and vice versa, the backward sweep skips the last
// color (identical re-solve), and the backward color-1 solve is elided on
// steps 1..m−1. Per-column arithmetic order matches the column-contiguous
// SweepCSRCols exactly; only the memory layout differs — the s per-column
// block sums of one gathered row read from adjacent elements.
func portableSweepCSRI(a *SweepArgs, rhat, r, y []float64, st, n, s int) {
	m := len(a.Alphas)
	ng := len(a.Start) - 1
	for i := 0; i < n; i++ {
		zeroRow(rhat[i*st:i*st+s], y[i*st:i*st+s])
	}
	for step := 1; step <= m; step++ {
		alpha := a.Alphas[m-step]
		// Forward half-sweep: x = fresh lower block sums, y = cached upper
		// sums from the previous backward half-sweep.
		for c := 0; c < ng; c++ {
			lo, hi := a.Start[c], a.Start[c+1]
			cache := c < ng-1
			for i := lo; i < hi; i++ {
				rs, re := a.RowPtr[i], a.RowPtr[i+1]
				di := a.Diag[i]
				rr := r[i*st : i*st+s]
				rh := rhat[i*st : i*st+s]
				yy := y[i*st : i*st+s]
				for j := range rh {
					var sum float64
					for k := rs; k < re; k++ {
						ci := colidxBelow(a.ColIdx, k, lo)
						if ci < 0 {
							break
						}
						sum -= a.Val[k] * rhat[ci*st+j]
					}
					rh[j] = (sum + yy[j] + alpha*rr[j]) / di
					if cache {
						yy[j] = sum
					}
				}
			}
		}
		// Backward half-sweep: colors descending, skipping the last color;
		// the color-1 solve is elided until the final step.
		for c := ng - 2; c >= 0; c-- {
			lo, hi := a.Start[c], a.Start[c+1]
			solve := c > 0 || step == m
			for i := lo; i < hi; i++ {
				rs, re := a.RowPtr[i], a.RowPtr[i+1]
				di := a.Diag[i]
				rr := r[i*st : i*st+s]
				rh := rhat[i*st : i*st+s]
				yy := y[i*st : i*st+s]
				for j := range rh {
					var sum float64
					for k := re - 1; k >= rs; k-- {
						ci := colidxAtLeast(a.ColIdx, k, hi)
						if ci < 0 {
							break
						}
						sum -= a.Val[k] * rhat[ci*st+j]
					}
					if solve {
						rh[j] = (sum + yy[j] + alpha*rr[j]) / di
					}
					yy[j] = sum
				}
			}
		}
	}
}

// colidxBelow returns ColIdx[k] when it is < bound (a lower-triangle entry
// for this color group), −1 otherwise — columns are sorted ascending, so a
// −1 ends the forward scan.
func colidxBelow(colidx []int, k, bound int) int {
	if c := colidx[k]; c < bound {
		return c
	}
	return -1
}

// colidxAtLeast returns ColIdx[k] when it is ≥ bound (an upper-triangle
// entry), −1 otherwise — the backward scan walks entries descending, so a
// −1 ends it.
func colidxAtLeast(colidx []int, k, bound int) int {
	if c := colidx[k]; c >= bound {
		return c
	}
	return -1
}

// zeroRow zeroes the paired live-row views of the sweep's output and cache
// panels.
func zeroRow(a, b []float64) {
	for i := range a {
		a[i] = 0
		b[i] = 0
	}
}

// DiagRange returns the half-open row range [lo, hi) over which diagonal d
// lies inside an n×n matrix — shared with sparse.DIA's triad loops.
func DiagRange(n, d int) (lo, hi int) {
	lo = 0
	if d < 0 {
		lo = -d
	}
	hi = n
	if d > 0 {
		hi = n - d
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
