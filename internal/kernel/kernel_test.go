package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// The agreement tests pin the package's numerical contract: every kernel
// set produces bit-identical results on every shape, because no variant
// reassociates a per-column reduction. Dot-like kernels go through ulpEqual
// so a future genuinely-reassociating variant can relax its bound in one
// place; today the allowed distance is 0 ULPs everywhere.

// testSizes crosses the shapes that exercise every unroll remainder: below,
// at and above the 4-wide vector unroll and the 8-wide column tile.
var (
	testN = []int{1, 7, 8, 9, 63, 64, 65}
	testS = []int{1, 2, 3, 8, 16}
)

// sets returns every kernel set the host can run: the portable reference,
// the generic unrolled set, and the CPU-detected set when present.
func sets() map[string]*Impl {
	m := map[string]*Impl{
		"portable": Portable(),
		"unrolled": &unrolledImpl,
	}
	if a := Accelerated(); a != nil {
		m[a.Name] = a
	}
	return m
}

func randSlice(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// ulpEqual reports whether a and b are within dist representable float64s
// of each other (0 = bit-identical, with −0 ≡ +0).
func ulpEqual(a, b float64, dist uint64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	ia, ib := ordered(a), ordered(b)
	d := ia - ib
	if ib > ia {
		d = ib - ia
	}
	return d <= dist
}

// ordered maps a float64 onto the monotone integer line (negatives
// reflected), so ULP distance is plain integer distance.
func ordered(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

func TestUlpHelper(t *testing.T) {
	if !ulpEqual(1.0, 1.0, 0) || !ulpEqual(0.0, math.Copysign(0, -1), 0) {
		t.Fatal("ulpEqual rejects equal values")
	}
	next := math.Nextafter(1.0, 2.0)
	if ulpEqual(1.0, next, 0) {
		t.Fatal("ulpEqual(…, 0) accepts a 1-ULP difference")
	}
	if !ulpEqual(1.0, next, 1) {
		t.Fatal("ulpEqual(…, 1) rejects a 1-ULP difference")
	}
	if ulpEqual(math.NaN(), math.NaN(), 64) {
		t.Fatal("ulpEqual accepts NaN")
	}
}

func TestDotAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testN {
		x, y := randSlice(rng, n), randSlice(rng, n)
		want := portableDot(x, y)
		for name, im := range sets() {
			if got := im.Dot(x, y); !ulpEqual(got, want, 0) {
				t.Errorf("%s.Dot n=%d: got %v want %v", name, n, got, want)
			}
		}
	}
}

func TestGatherDot32Agreement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testN {
		x := randSlice(rng, n)
		nnz := 3*n + 1
		val := randSlice(rng, nnz)
		idx := make([]int32, nnz)
		for k := range idx {
			idx[k] = int32(rng.Intn(n))
		}
		want := portableGatherDot32(val, idx, x)
		for name, im := range sets() {
			if got := im.GatherDot32(val, idx, x); !ulpEqual(got, want, 0) {
				t.Errorf("%s.GatherDot32 n=%d: got %v want %v", name, n, got, want)
			}
		}
	}
}

func TestAxpyXpayExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range testN {
		x, y0 := randSlice(rng, n), randSlice(rng, n)
		a := rng.NormFloat64()
		want := append([]float64(nil), y0...)
		portableAxpy(a, x, want)
		for name, im := range sets() {
			y := append([]float64(nil), y0...)
			im.Axpy(a, x, y)
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("%s.Axpy n=%d: y[%d]=%v want %v", name, n, i, y[i], want[i])
				}
			}
		}
		want = append(want[:0:0], y0...)
		portableXpay(x, a, want)
		for name, im := range sets() {
			y := append([]float64(nil), y0...)
			im.Xpay(x, a, y)
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("%s.Xpay n=%d: y[%d]=%v want %v", name, n, i, y[i], want[i])
				}
			}
		}
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range testN {
		for _, s := range testS {
			for _, st := range []int{s, s + 3} {
				src := randSlice(rng, n*s)
				for name, im := range sets() {
					panel := make([]float64, n*st)
					im.Interleave(panel, st, src, n, s)
					for i := 0; i < n; i++ {
						for j := 0; j < s; j++ {
							if panel[i*st+j] != src[j*n+i] {
								t.Fatalf("%s.Interleave n=%d s=%d st=%d: (%d,%d) mismatch", name, n, s, st, i, j)
							}
						}
					}
					back := make([]float64, n*s)
					im.Deinterleave(back, n, s, panel, st)
					for i := range back {
						if back[i] != src[i] {
							t.Fatalf("%s round trip n=%d s=%d st=%d: flat %d mismatch", name, n, s, st, i)
						}
					}
				}
			}
		}
	}
}

func TestPanelKernelsAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range testN {
		for _, s := range testS {
			for _, st := range []int{s, s + 3} {
				x, y0 := randSlice(rng, n*st), randSlice(rng, n*st)
				as := randSlice(rng, s)

				want := make([]float64, s)
				portableDotI(x, y0, st, n, s, want)
				got := make([]float64, s)
				for name, im := range sets() {
					im.DotI(x, y0, st, n, s, got)
					for j := 0; j < s; j++ {
						if !ulpEqual(got[j], want[j], 0) {
							t.Fatalf("%s.DotI n=%d s=%d st=%d col %d: got %v want %v", name, n, s, st, j, got[j], want[j])
						}
					}
				}

				portableNorm := make([]float64, s)
				norm2I(x, st, n, s, portableNorm)
				normInfI(x, st, n, s, got)
				for j := 0; j < s; j++ {
					// the interleaved norms must match vec's scalar
					// recurrences on the gathered column
					col := make([]float64, n)
					for i := 0; i < n; i++ {
						col[i] = x[i*st+j]
					}
					var scale, ssq = 0.0, 1.0
					var inf float64
					for _, v := range col {
						if a := math.Abs(v); a > inf {
							inf = a
						}
						if v == 0 {
							continue
						}
						a := math.Abs(v)
						if scale < a {
							r := scale / a
							ssq = 1 + ssq*r*r
							scale = a
						} else {
							r := a / scale
							ssq += r * r
						}
					}
					if w := scale * math.Sqrt(ssq); portableNorm[j] != w {
						t.Fatalf("Norm2I n=%d s=%d st=%d col %d: got %v want %v", n, s, st, j, portableNorm[j], w)
					}
					if got[j] != inf {
						t.Fatalf("NormInfI n=%d s=%d st=%d col %d: got %v want %v", n, s, st, j, got[j], inf)
					}
				}

				wantY := append([]float64(nil), y0...)
				portableAxpyI(as, x, wantY, st, n, s)
				for name, im := range sets() {
					y := append([]float64(nil), y0...)
					im.AxpyI(as, x, y, st, n, s)
					for i := range y {
						if y[i] != wantY[i] {
							t.Fatalf("%s.AxpyI n=%d s=%d st=%d: flat %d mismatch", name, n, s, st, i)
						}
					}
				}
				wantY = append(wantY[:0:0], y0...)
				portableXpayI(x, as, wantY, st, n, s)
				for name, im := range sets() {
					y := append([]float64(nil), y0...)
					im.XpayI(x, as, y, st, n, s)
					for i := range y {
						if y[i] != wantY[i] {
							t.Fatalf("%s.XpayI n=%d s=%d st=%d: flat %d mismatch", name, n, s, st, i)
						}
					}
				}
			}
		}
	}
}

// randCSR builds a random n×n pattern with sorted columns, ~nnzPerRow
// entries per row, and a guaranteed diagonal entry (so the sweep can divide
// by it).
func randCSR(rng *rand.Rand, n, nnzPerRow int) (rowptr, colidx []int, val []float64) {
	rowptr = make([]int, n+1)
	for i := 0; i < n; i++ {
		cols := map[int]bool{i: true}
		for k := 0; k < nnzPerRow; k++ {
			cols[rng.Intn(n)] = true
		}
		sorted := make([]int, 0, len(cols))
		for c := range cols {
			sorted = append(sorted, c)
		}
		for a := 1; a < len(sorted); a++ {
			for b := a; b > 0 && sorted[b] < sorted[b-1]; b-- {
				sorted[b], sorted[b-1] = sorted[b-1], sorted[b]
			}
		}
		for _, c := range sorted {
			colidx = append(colidx, c)
			v := rng.NormFloat64()
			if c == i {
				v = 4 + math.Abs(v) // dominant positive diagonal
			}
			val = append(val, v)
		}
		rowptr[i+1] = len(colidx)
	}
	return rowptr, colidx, val
}

func TestSpMMCSRIAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range testN {
		rowptr, colidx, val := randCSR(rng, n, 4)
		for _, s := range testS {
			for _, st := range []int{s, s + 3} {
				xcols := randSlice(rng, n*s) // column-contiguous reference input
				x := make([]float64, n*st)
				portableInterleave(x, st, xcols, n, s)

				// Column-major reference: the shared tiled loop the CSR
				// operator itself runs.
				ref := make([]float64, n*s)
				SpMMCSRCols(rowptr, colidx, val, xcols, n, ref, n, 0, n, s)

				for name, im := range sets() {
					dst := make([]float64, n*st)
					im.SpMMCSRI(rowptr, colidx, val, x, st, dst, st, 0, n, s)
					for i := 0; i < n; i++ {
						for j := 0; j < s; j++ {
							if got, want := dst[i*st+j], ref[j*n+i]; !ulpEqual(got, want, 0) {
								t.Fatalf("%s.SpMMCSRI n=%d s=%d st=%d (%d,%d): got %v want %v", name, n, s, st, i, j, got, want)
							}
						}
					}
				}
			}
		}
	}
}

func TestSpMMDIAIAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range testN {
		offsets := []int{-3, -1, 0, 1, 3}
		if n < 4 {
			offsets = []int{0}
		}
		diags := make([][]float64, len(offsets))
		for k := range diags {
			diags[k] = randSlice(rng, n)
		}
		for _, s := range testS {
			for _, st := range []int{s, s + 3} {
				x := randSlice(rng, n*st)
				want := make([]float64, n*st)
				portableSpMMDIAI(offsets, diags, n, x, st, want, st, 0, n, s)
				for name, im := range sets() {
					dst := make([]float64, n*st)
					im.SpMMDIAI(offsets, diags, n, x, st, dst, st, 0, n, s)
					for i := range dst {
						if dst[i] != want[i] {
							t.Fatalf("%s.SpMMDIAI n=%d s=%d st=%d: flat %d got %v want %v", name, n, s, st, i, dst[i], want[i])
						}
					}
				}
			}
		}
	}
}

// sweepStarts partitions [0, n) into ng contiguous groups.
func sweepStarts(n, ng int) []int {
	if ng > n {
		ng = n
	}
	start := make([]int, ng+1)
	for c := 0; c <= ng; c++ {
		start[c] = c * n / ng
	}
	return start
}

func TestSweepCSRIAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range testN {
		rowptr, colidx, val := randCSR(rng, n, 3)
		diag := make([]float64, n)
		for i := 0; i < n; i++ {
			for k := rowptr[i]; k < rowptr[i+1]; k++ {
				if colidx[k] == i {
					diag[i] = val[k]
				}
			}
		}
		for _, m := range []int{1, 3} {
			alphas := randSlice(rng, m)
			args := &SweepArgs{RowPtr: rowptr, ColIdx: colidx, Val: val,
				Start: sweepStarts(n, 6), Diag: diag, Alphas: alphas}
			for _, s := range testS {
				for _, st := range []int{s, s + 3} {
					rcols := randSlice(rng, n*s)
					r := make([]float64, n*st)
					portableInterleave(r, st, rcols, n, s)

					// Column-major reference: the fused sweep the splitting
					// package runs on column blocks.
					refRhat := make([]float64, n*s)
					refY := make([]float64, n*s)
					SweepCSRCols(args, refRhat, rcols, refY, n, s)

					for name, im := range sets() {
						rhat := make([]float64, n*st)
						y := make([]float64, n*st)
						im.SweepCSRI(args, rhat, r, y, st, n, s)
						for i := 0; i < n; i++ {
							for j := 0; j < s; j++ {
								if got, want := rhat[i*st+j], refRhat[j*n+i]; got != want {
									t.Fatalf("%s.SweepCSRI n=%d m=%d s=%d st=%d (%d,%d): got %v want %v", name, n, m, s, st, i, j, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestDispatchAllocFree guards the steady-state zero-allocation property of
// every dispatch entry in every set, plus the layout conversions.
func TestDispatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, s, st := 64, 8, 8
	x, y := randSlice(rng, n*st), randSlice(rng, n*st)
	cols := randSlice(rng, n*s)
	as := randSlice(rng, s)
	dst := make([]float64, s)
	rowptr, colidx, val := randCSR(rng, n, 4)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = 4
	}
	args := &SweepArgs{RowPtr: rowptr, ColIdx: colidx, Val: val,
		Start: sweepStarts(n, 6), Diag: diag, Alphas: []float64{1, 1}}
	idx := make([]int32, n)
	for k := range idx {
		idx[k] = int32(k)
	}
	offsets := []int{-1, 0, 1}
	diags := [][]float64{randSlice(rng, n), randSlice(rng, n), randSlice(rng, n)}
	spmmY := make([]float64, n*st)
	sweepY := make([]float64, n*st)

	var sink float64
	for name, im := range sets() {
		checks := map[string]func(){
			"Dot":          func() { sink += im.Dot(x[:n], y[:n]) },
			"Axpy":         func() { im.Axpy(2, x[:n], y[:n]) },
			"Xpay":         func() { im.Xpay(x[:n], 2, y[:n]) },
			"GatherDot32":  func() { sink += im.GatherDot32(val[:n], idx, x[:n]) },
			"Interleave":   func() { im.Interleave(y, st, cols, n, s) },
			"Deinterleave": func() { im.Deinterleave(cols, n, s, y, st) },
			"DotI":         func() { im.DotI(x, y, st, n, s, dst) },
			"AxpyI":        func() { im.AxpyI(as, x, y, st, n, s) },
			"XpayI":        func() { im.XpayI(x, as, y, st, n, s) },
			"Norm2I":       func() { im.Norm2I(x, st, n, s, dst) },
			"NormInfI":     func() { im.NormInfI(x, st, n, s, dst) },
			"SpMMCSRI":     func() { im.SpMMCSRI(rowptr, colidx, val, x, st, spmmY, st, 0, n, s) },
			"SpMMDIAI":     func() { im.SpMMDIAI(offsets, diags, n, x, st, spmmY, st, 0, n, s) },
			"SweepCSRI":    func() { im.SweepCSRI(args, spmmY, x, sweepY, st, n, s) },
		}
		for entry, fn := range checks {
			if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
				t.Errorf("%s.%s allocates %.1f per run", name, entry, allocs)
			}
		}
	}
	_ = sink
}

func TestSelectAndValidName(t *testing.T) {
	for _, name := range []string{"", "auto", "portable"} {
		if !ValidName(name) {
			t.Errorf("ValidName(%q) = false", name)
		}
	}
	for _, name := range []string{"avx512", "simd", "fast"} {
		if ValidName(name) {
			t.Errorf("ValidName(%q) = true", name)
		}
	}
	if Select("portable") != Portable() {
		t.Error("Select(portable) is not the portable set")
	}
	if Select("") != Active() || Select("auto") != Active() {
		t.Error("Select(auto) is not the active set")
	}
	if a := Accelerated(); a != nil && a.Name == "portable" {
		t.Error("accelerated set must not be named portable")
	}
	if Active() != Portable() && Active() != Accelerated() {
		t.Error("active set is neither portable nor accelerated")
	}
}

// FuzzSpMMCSRI cross-checks the interleaved SpMM kernels against the
// column-major tiled loop on random CSR patterns.
func FuzzSpMMCSRI(f *testing.F) {
	f.Add(int64(1), 8, 8, 3)
	f.Add(int64(2), 1, 1, 0)
	f.Add(int64(3), 65, 16, 5)
	f.Add(int64(4), 9, 3, 2)
	f.Fuzz(func(t *testing.T, seed int64, n, s, fill int) {
		if n < 1 || n > 128 || s < 1 || s > 24 || fill < 0 || fill > 16 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		rowptr, colidx, val := randCSR(rng, n, fill)
		st := s + rng.Intn(3)
		xcols := randSlice(rng, n*s)
		x := make([]float64, n*st)
		portableInterleave(x, st, xcols, n, s)
		ref := make([]float64, n*s)
		SpMMCSRCols(rowptr, colidx, val, xcols, n, ref, n, 0, n, s)
		for name, im := range sets() {
			dst := make([]float64, n*st)
			im.SpMMCSRI(rowptr, colidx, val, x, st, dst, st, 0, n, s)
			for i := 0; i < n; i++ {
				for j := 0; j < s; j++ {
					if got, want := dst[i*st+j], ref[j*n+i]; !ulpEqual(got, want, 0) {
						t.Fatalf("%s n=%d s=%d st=%d (%d,%d): got %v want %v", name, n, s, st, i, j, got, want)
					}
				}
			}
		}
	})
}
