// Package kernel holds the hardware-speed inner loops every solver backend
// funnels through: SpMV/SpMM, the fused multi-dot / axpy / xpay family, the
// Conrad–Wallach multicolor m-step sweep, and the layout conversions between
// the column-contiguous vec.Multi block and the row-interleaved panel the
// block kernels prefer.
//
// # Interleaved panels
//
// A row-interleaved panel stores an n×s multivector with the s column values
// of each row adjacent: element (i, j) lives at Data[i*stride+j] with
// j < s ≤ stride. Where the column-contiguous layout makes every per-column
// view a zero-copy slice (what the preconditioner sweeps, deflation swaps
// and solution export want), the interleaved layout makes every per-row view
// contiguous — one gathered CSR row index feeds all s columns from a single
// cache line (s = 8 float64s is exactly one 64-byte line), which is what the
// SpMM and sweep gather loops want. The planner-tiled executor converts at
// tile boundaries, so both layouts are used where each wins.
//
// # Dispatch
//
// Every kernel has a portable pure-Go reference implementation and an
// accelerated variant (column-direction unrolled loops with s = 8
// specializations — SIMD-shaped code the compiler turns into vector
// instructions under GOAMD64=v3, and a NEON-friendly form on arm64). One
// implementation set is selected at package init by CPU feature detection:
// amd64 with AVX2+FMA (and OS-enabled YMM state) selects the "avx2" set,
// arm64 the "neon" set (NEON is baseline there), everything else the
// "portable" set. Setting REPRO_KERNEL=portable in the environment forces
// the portable set process-wide; per-solve, core.Config.Kernel — threaded
// down to the cg block solver — selects the set for one solve's interleaved
// path.
//
// # Numerical contract
//
// Accelerated kernels never reassociate a per-column reduction: dot products
// and SpMM row sums accumulate in exactly the portable order (unrolling runs
// across columns, where accumulators are independent, not along the
// reduction). Axpy/xpay are elementwise and exact by construction. Solver
// results are therefore bit-identical across kernel sets and layouts — a
// stronger guarantee than the ±1-iteration tolerance the acceptance tests
// demand — and the property tests in this package assert exact agreement
// (with a ULP-bounded helper kept for future reassociating variants).
package kernel
