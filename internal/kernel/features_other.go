//go:build !amd64 && !arm64

package kernel

// detect reports no accelerated set on architectures without a tuned
// variant; the portable set runs everywhere.
func detect() *Impl { return nil }
