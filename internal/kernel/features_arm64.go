//go:build arm64

package kernel

// detect returns the "neon" set: NEON (ASIMD) is baseline on arm64, so the
// unrolled loops are always profitable there and no runtime probing is
// needed.
func detect() *Impl {
	impl := unrolledImpl
	impl.Name = "neon"
	return &impl
}
