package kernel

// Column-contiguous fused kernels. These are the pre-interleaving inner
// loops of sparse.CSR.MulMatTo and splitting's Conrad–Wallach block sweep,
// moved here so the tile/tail bookkeeping they used to duplicate lives in
// one place (tileSpan) next to the interleaved forms that supersede them on
// wide blocks. They are not dispatched: their exact arithmetic order is the
// reference the rest of the library is specified against, and both kernel
// sets reproduce it.

// colTile is the column-tile width of the fused column-major loops: a row's
// index/value pair is loaded once per tile and fanned out across up to
// colTile per-column accumulators held in a fixed-size stack array.
const colTile = 8

// tileSpan returns the live width of the column tile starting at c0 — the
// one remainder computation the fused column-major kernels (and the generic
// unrolled interleaved kernels) share.
func tileSpan(s, c0 int) int {
	if w := s - c0; w < colTile {
		return w
	}
	return colTile
}

// SpMMCSRCols computes rows [lo, hi) of dst = A·X for column-contiguous
// n-row multivectors (column j of X at x[j*xn:(j+1)*xn], of dst at
// dst[j*dn:(j+1)*dn]). Each row's entry list is scanned once per column
// tile, with the tile's partial sums accumulating in registers; per-column
// summation order matches CSR.MulVecTo exactly.
func SpMMCSRCols(rowptr, colidx []int, val []float64, x []float64, xn int, dst []float64, dn int, lo, hi, s int) {
	if s < 4 {
		// Narrow blocks lose more to tile bookkeeping than fused row scans
		// save; run the plain per-column row products.
		for i := lo; i < hi; i++ {
			start, end := rowptr[i], rowptr[i+1]
			for j := 0; j < s; j++ {
				base := j * xn
				var sum float64
				for k := start; k < end; k++ {
					sum += val[k] * x[base+colidx[k]]
				}
				dst[j*dn+i] = sum
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		start, end := rowptr[i], rowptr[i+1]
		for c0 := 0; c0 < s; c0 += colTile {
			cw := tileSpan(s, c0)
			var sums [colTile]float64
			for k := start; k < end; k++ {
				v := val[k]
				base := c0*xn + colidx[k]
				for t := 0; t < cw; t++ {
					sums[t] += v * x[base]
					base += xn
				}
			}
			base := c0*dn + i
			for t := 0; t < cw; t++ {
				dst[base] = sums[t]
				base += dn
			}
		}
	}
}

// SweepCSRCols runs the full m-step Conrad–Wallach multicolor sweep over
// column-contiguous multivectors rhat, r with cache block y (each n×s,
// column stride n; rhat and y are zeroed on entry). At each (step, color,
// row) the solve runs across all s columns while row i's index/value block
// is hot in cache; column j reproduces the scalar ApplyMStep on column j
// exactly (−a−b ≡ −(a+b) in IEEE arithmetic, negation being exact).
func SweepCSRCols(a *SweepArgs, rhat, r, y []float64, n, s int) {
	m := len(a.Alphas)
	ng := len(a.Start) - 1
	for i := range rhat[:n*s] {
		rhat[i] = 0
		y[i] = 0
	}
	for step := 1; step <= m; step++ {
		alpha := a.Alphas[m-step]
		// Forward half-sweep: x = fresh lower block sums, y = cached upper
		// sums from the previous backward half-sweep.
		for c := 0; c < ng; c++ {
			lo, hi := a.Start[c], a.Start[c+1]
			cache := c < ng-1
			for i := lo; i < hi; i++ {
				rowStart, rowEnd := a.RowPtr[i], a.RowPtr[i+1]
				di := a.Diag[i]
				for c0 := 0; c0 < s; c0 += colTile {
					cw := tileSpan(s, c0)
					var sums [colTile]float64
					for p := rowStart; p < rowEnd; p++ {
						j := a.ColIdx[p]
						if j >= lo {
							break // columns sorted; rest are within-group or upper
						}
						v := a.Val[p]
						base := c0*n + j
						for t := 0; t < cw; t++ {
							sums[t] -= v * rhat[base]
							base += n
						}
					}
					base := c0*n + i
					for t := 0; t < cw; t++ {
						x := sums[t]
						rhat[base] = (x + y[base] + alpha*r[base]) / di
						if cache {
							y[base] = x
						}
						base += n
					}
				}
			}
		}
		// Backward half-sweep: colors descending, skipping the last color
		// (identical re-solve); the color-1 solve is elided until the final
		// step. x = fresh upper block sums, y = cached lower sums from the
		// forward half-sweep.
		for c := ng - 2; c >= 0; c-- {
			lo, hi := a.Start[c], a.Start[c+1]
			solve := c > 0 || step == m
			for i := lo; i < hi; i++ {
				rowStart, rowEnd := a.RowPtr[i], a.RowPtr[i+1]
				di := a.Diag[i]
				for c0 := 0; c0 < s; c0 += colTile {
					cw := tileSpan(s, c0)
					var sums [colTile]float64
					for p := rowEnd - 1; p >= rowStart; p-- {
						j := a.ColIdx[p]
						if j < hi {
							break
						}
						v := a.Val[p]
						base := c0*n + j
						for t := 0; t < cw; t++ {
							sums[t] -= v * rhat[base]
							base += n
						}
					}
					base := c0*n + i
					for t := 0; t < cw; t++ {
						x := sums[t]
						if solve {
							rhat[base] = (x + y[base] + alpha*r[base]) / di
						}
						y[base] = x
						base += n
					}
				}
			}
		}
	}
}

// MultiDotCols computes dst[j] = (x_j, y_j) for column-contiguous n-row
// multivectors through the dispatched Dot — vec.MultiDot's fused body, so
// the per-column reduction shares one implementation with the scalar path.
func MultiDotCols(x, y []float64, n, s int, dst []float64) {
	impl := activeImpl
	for j := 0; j < s; j++ {
		dst[j] = impl.Dot(x[j*n:(j+1)*n], y[j*n:(j+1)*n])
	}
}
