package kernel

import "os"

// EnvVar is the environment variable that forces a kernel set at startup:
// REPRO_KERNEL=portable selects the portable reference implementations
// process-wide regardless of detected CPU features.
const EnvVar = "REPRO_KERNEL"

// SweepArgs bundles the matrix-side inputs of the Conrad–Wallach m-step
// multicolor SSOR sweep: the CSR pattern/values, the color-group boundaries
// (group c spans rows [Start[c], Start[c+1])), the main diagonal, and the
// m-step coefficients applied in reverse order (alphas[m-step]).
type SweepArgs struct {
	RowPtr []int
	ColIdx []int
	Val    []float64
	Start  []int
	Diag   []float64
	Alphas []float64
}

// Impl is one complete kernel set. Every entry is allocation-free in steady
// state, and every per-column reduction accumulates in the portable order
// (see the package comment's numerical contract).
//
// Interleaved panels pass as raw slices: element (i, j) of an n-row, s-live-
// column panel with row stride st lives at data[i*st+j].
type Impl struct {
	// Name identifies the set in plans, stats and logs: "portable", "avx2"
	// (amd64 with AVX2+FMA) or "neon" (arm64).
	Name string

	// Dot returns Σ x[i]·y[i] accumulated in index order.
	Dot func(x, y []float64) float64
	// Axpy computes y += a·x elementwise.
	Axpy func(a float64, x, y []float64)
	// Xpay computes y = x + a·y elementwise.
	Xpay func(x []float64, a float64, y []float64)
	// GatherDot32 returns Σ val[k]·x[idx[k]] in k order — the sparse-row
	// inner product of the decomposed backend's local sweeps (int32 local
	// column indices).
	GatherDot32 func(val []float64, idx []int32, x []float64) float64

	// Interleave converts a column-contiguous n×s block (column j at
	// src[j*n:(j+1)*n]) into an interleaved panel with row stride st.
	Interleave func(dst []float64, st int, src []float64, n, s int)
	// Deinterleave converts an interleaved panel back to column-contiguous
	// form.
	Deinterleave func(dst []float64, n, s int, src []float64, st int)

	// DotI computes dst[j] = Σ_i x[i·st+j]·y[i·st+j] for every live column
	// in one fused pass; per-column accumulation order matches Dot.
	DotI func(x, y []float64, st, n, s int, dst []float64)
	// AxpyI computes y_j += alphas[j]·x_j over interleaved panels.
	AxpyI func(alphas []float64, x, y []float64, st, n, s int)
	// XpayI computes y_j = x_j + betas[j]·y_j over interleaved panels.
	XpayI func(x []float64, betas []float64, y []float64, st, n, s int)
	// Norm2I computes dst[j] = ‖x_j‖₂ per live column, with the same
	// overflow-guarded scaling recurrence as vec.Norm2.
	Norm2I func(x []float64, st, n, s int, dst []float64)
	// NormInfI computes dst[j] = max_i |x[i·st+j]|.
	NormInfI func(x []float64, st, n, s int, dst []float64)

	// SpMMCSRI computes rows [lo, hi) of dst = A·X over interleaved panels:
	// one gathered row index feeds all s columns from adjacent memory.
	// Per-column accumulation order is the CSR entry order, matching
	// CSR.MulVecTo.
	SpMMCSRI func(rowptr, colidx []int, val []float64, x []float64, xs int, dst []float64, ds int, lo, hi, s int)
	// SpMMDIAI computes rows [lo, hi) of dst = A·X for diagonal storage over
	// interleaved panels: every stored diagonal is a contiguous triad on
	// both operands. Per-column order matches DIA.MulVecTo (ascending
	// stored-diagonal index).
	SpMMDIAI func(offsets []int, diags [][]float64, n int, x []float64, xs int, dst []float64, ds int, lo, hi, s int)
	// SweepCSRI runs the full m-step Conrad–Wallach multicolor sweep over
	// interleaved panels rhat, r with cache panel y (each n rows, stride
	// st, s live columns; rhat and y are zeroed on entry). Column j
	// reproduces the column-contiguous sweep on column j exactly.
	SweepCSRI func(a *SweepArgs, rhat, r, y []float64, st, n, s int)
}

// portableImpl is the reference set; acceleratedImpl is built by the
// per-arch detect() (nil when the CPU has no accelerated set).
var (
	portableImpl = Impl{
		Name:         "portable",
		Dot:          portableDot,
		Axpy:         portableAxpy,
		Xpay:         portableXpay,
		GatherDot32:  portableGatherDot32,
		Interleave:   portableInterleave,
		Deinterleave: portableDeinterleave,
		DotI:         portableDotI,
		AxpyI:        portableAxpyI,
		XpayI:        portableXpayI,
		Norm2I:       norm2I,
		NormInfI:     normInfI,
		SpMMCSRI:     portableSpMMCSRI,
		SpMMDIAI:     portableSpMMDIAI,
		SweepCSRI:    portableSweepCSRI,
	}
	acceleratedImpl *Impl
	activeImpl      *Impl
)

func init() {
	acceleratedImpl = detect()
	activeImpl = &portableImpl
	if acceleratedImpl != nil {
		activeImpl = acceleratedImpl
	}
	if os.Getenv(EnvVar) == "portable" {
		activeImpl = &portableImpl
	}
}

// Active returns the kernel set selected at startup: the accelerated set
// when CPU feature detection found one (and REPRO_KERNEL did not override),
// the portable set otherwise.
func Active() *Impl { return activeImpl }

// Portable returns the reference set. It is always available — the fallback
// every CPU can run — and is what REPRO_KERNEL=portable selects.
func Portable() *Impl { return &portableImpl }

// Accelerated returns the CPU-specific set, or nil when the host has none
// (amd64 without AVX2+FMA, or an architecture without a tuned variant).
func Accelerated() *Impl { return acceleratedImpl }

// Select resolves a per-solve kernel policy: "" and "auto" return the
// startup-selected set, "portable" the reference set. Unknown names resolve
// to the active set (the policy is validated upstream in core.Config).
func Select(name string) *Impl {
	if name == "portable" {
		return &portableImpl
	}
	return activeImpl
}

// ValidName reports whether name is an accepted kernel policy.
func ValidName(name string) bool {
	switch name {
	case "", "auto", "portable":
		return true
	}
	return false
}
