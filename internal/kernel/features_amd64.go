//go:build amd64

package kernel

// Implemented in features_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// detect returns the "avx2" set when the CPU advertises AVX2 and FMA and the
// OS has enabled YMM state (OSXSAVE set and XCR0 covering XMM|YMM) — the
// features the unrolled loops compile into under GOAMD64=v3. Anything less
// capable runs the portable set; the unrolled code itself is pure Go, so the
// gate is about naming the set honestly, not about safety.
func detect() *Impl {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return nil
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return nil
	}
	if xlo, _ := xgetbv(); xlo&0x6 != 0x6 {
		return nil
	}
	const avx2 = 1 << 5
	if _, ebx7, _, _ := cpuid(7, 0); ebx7&avx2 == 0 {
		return nil
	}
	impl := unrolledImpl
	impl.Name = "avx2"
	return &impl
}
