package kernel

// The unrolled set: SIMD-shaped loops the compiler can vectorize under
// GOAMD64=v3 (AVX2+FMA) or arm64's baseline NEON. Per the package contract,
// no per-column reduction is reassociated — unrolling runs either across
// columns (independent accumulators) or along the vector in left-associated
// chains (s + a + b + c + d ≡ the sequential order), so every function here
// is bit-identical to its portable counterpart. The wide-block hot path is
// s == 8 (the planner's default tile width): those specializations hold the
// eight per-column accumulators in scalars and read each panel row as one
// bounds-check-free 64-byte slice.

var unrolledImpl = Impl{
	Name:         "unrolled",
	Dot:          unrolledDot,
	Axpy:         unrolledAxpy,
	Xpay:         unrolledXpay,
	GatherDot32:  unrolledGatherDot32,
	Interleave:   unrolledInterleave,
	Deinterleave: unrolledDeinterleave,
	DotI:         unrolledDotI,
	AxpyI:        unrolledAxpyI,
	XpayI:        unrolledXpayI,
	Norm2I:       norm2I,
	NormInfI:     normInfI,
	SpMMCSRI:     unrolledSpMMCSRI,
	SpMMDIAI:     unrolledSpMMDIAI,
	SweepCSRI:    unrolledSweepCSRI,
}

func unrolledDot(x, y []float64) float64 {
	y = y[:len(x)]
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s = s + x[i]*y[i] + x[i+1]*y[i+1] + x[i+2]*y[i+2] + x[i+3]*y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

func unrolledAxpy(a float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

func unrolledXpay(x []float64, a float64, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] = x[i] + a*y[i]
		y[i+1] = x[i+1] + a*y[i+1]
		y[i+2] = x[i+2] + a*y[i+2]
		y[i+3] = x[i+3] + a*y[i+3]
	}
	for ; i < len(x); i++ {
		y[i] = x[i] + a*y[i]
	}
}

func unrolledGatherDot32(val []float64, idx []int32, x []float64) float64 {
	idx = idx[:len(val)]
	var s float64
	k := 0
	for ; k+4 <= len(val); k += 4 {
		s = s + val[k]*x[idx[k]] + val[k+1]*x[idx[k+1]] + val[k+2]*x[idx[k+2]] + val[k+3]*x[idx[k+3]]
	}
	for ; k < len(val); k++ {
		s += val[k] * x[idx[k]]
	}
	return s
}

func unrolledInterleave(dst []float64, st int, src []float64, n, s int) {
	if s == 8 {
		c0, c1, c2, c3 := src[0:n], src[n:2*n], src[2*n:3*n], src[3*n:4*n]
		c4, c5, c6, c7 := src[4*n:5*n], src[5*n:6*n], src[6*n:7*n], src[7*n:8*n]
		for i := 0; i < n; i++ {
			row := dst[i*st : i*st+8 : i*st+8]
			row[0], row[1], row[2], row[3] = c0[i], c1[i], c2[i], c3[i]
			row[4], row[5], row[6], row[7] = c4[i], c5[i], c6[i], c7[i]
		}
		return
	}
	portableInterleave(dst, st, src, n, s)
}

func unrolledDeinterleave(dst []float64, n, s int, src []float64, st int) {
	if s == 8 {
		c0, c1, c2, c3 := dst[0:n], dst[n:2*n], dst[2*n:3*n], dst[3*n:4*n]
		c4, c5, c6, c7 := dst[4*n:5*n], dst[5*n:6*n], dst[6*n:7*n], dst[7*n:8*n]
		for i := 0; i < n; i++ {
			row := src[i*st : i*st+8 : i*st+8]
			c0[i], c1[i], c2[i], c3[i] = row[0], row[1], row[2], row[3]
			c4[i], c5[i], c6[i], c7[i] = row[4], row[5], row[6], row[7]
		}
		return
	}
	portableDeinterleave(dst, n, s, src, st)
}

func unrolledDotI(x, y []float64, st, n, s int, dst []float64) {
	if s == 8 {
		var d0, d1, d2, d3, d4, d5, d6, d7 float64
		for i := 0; i < n; i++ {
			xr := x[i*st : i*st+8 : i*st+8]
			yr := y[i*st : i*st+8 : i*st+8]
			d0 += xr[0] * yr[0]
			d1 += xr[1] * yr[1]
			d2 += xr[2] * yr[2]
			d3 += xr[3] * yr[3]
			d4 += xr[4] * yr[4]
			d5 += xr[5] * yr[5]
			d6 += xr[6] * yr[6]
			d7 += xr[7] * yr[7]
		}
		dst[0], dst[1], dst[2], dst[3] = d0, d1, d2, d3
		dst[4], dst[5], dst[6], dst[7] = d4, d5, d6, d7
		return
	}
	for c0 := 0; c0 < s; c0 += colTile {
		cw := tileSpan(s, c0)
		var acc [colTile]float64
		for i := 0; i < n; i++ {
			xr := x[i*st+c0 : i*st+c0+cw]
			yr := y[i*st+c0 : i*st+c0+cw]
			for t, xv := range xr {
				acc[t] += xv * yr[t]
			}
		}
		copy(dst[c0:c0+cw], acc[:cw])
	}
}

func unrolledAxpyI(alphas []float64, x, y []float64, st, n, s int) {
	if s == 8 {
		a0, a1, a2, a3 := alphas[0], alphas[1], alphas[2], alphas[3]
		a4, a5, a6, a7 := alphas[4], alphas[5], alphas[6], alphas[7]
		for i := 0; i < n; i++ {
			xr := x[i*st : i*st+8 : i*st+8]
			yr := y[i*st : i*st+8 : i*st+8]
			yr[0] += a0 * xr[0]
			yr[1] += a1 * xr[1]
			yr[2] += a2 * xr[2]
			yr[3] += a3 * xr[3]
			yr[4] += a4 * xr[4]
			yr[5] += a5 * xr[5]
			yr[6] += a6 * xr[6]
			yr[7] += a7 * xr[7]
		}
		return
	}
	portableAxpyI(alphas, x, y, st, n, s)
}

func unrolledXpayI(x []float64, betas []float64, y []float64, st, n, s int) {
	if s == 8 {
		b0, b1, b2, b3 := betas[0], betas[1], betas[2], betas[3]
		b4, b5, b6, b7 := betas[4], betas[5], betas[6], betas[7]
		for i := 0; i < n; i++ {
			xr := x[i*st : i*st+8 : i*st+8]
			yr := y[i*st : i*st+8 : i*st+8]
			yr[0] = xr[0] + b0*yr[0]
			yr[1] = xr[1] + b1*yr[1]
			yr[2] = xr[2] + b2*yr[2]
			yr[3] = xr[3] + b3*yr[3]
			yr[4] = xr[4] + b4*yr[4]
			yr[5] = xr[5] + b5*yr[5]
			yr[6] = xr[6] + b6*yr[6]
			yr[7] = xr[7] + b7*yr[7]
		}
		return
	}
	portableXpayI(x, betas, y, st, n, s)
}

func unrolledSpMMCSRI(rowptr, colidx []int, val []float64, x []float64, xs int, dst []float64, ds int, lo, hi, s int) {
	if s == 8 {
		for i := lo; i < hi; i++ {
			var d0, d1, d2, d3, d4, d5, d6, d7 float64
			for k := rowptr[i]; k < rowptr[i+1]; k++ {
				v := val[k]
				c := colidx[k] * xs
				xr := x[c : c+8 : c+8]
				d0 += v * xr[0]
				d1 += v * xr[1]
				d2 += v * xr[2]
				d3 += v * xr[3]
				d4 += v * xr[4]
				d5 += v * xr[5]
				d6 += v * xr[6]
				d7 += v * xr[7]
			}
			dr := dst[i*ds : i*ds+8 : i*ds+8]
			dr[0], dr[1], dr[2], dr[3] = d0, d1, d2, d3
			dr[4], dr[5], dr[6], dr[7] = d4, d5, d6, d7
		}
		return
	}
	for i := lo; i < hi; i++ {
		start, end := rowptr[i], rowptr[i+1]
		for c0 := 0; c0 < s; c0 += colTile {
			cw := tileSpan(s, c0)
			var acc [colTile]float64
			for k := start; k < end; k++ {
				v := val[k]
				xr := x[colidx[k]*xs+c0 : colidx[k]*xs+c0+cw]
				for t, xv := range xr {
					acc[t] += v * xv
				}
			}
			copy(dst[i*ds+c0:i*ds+c0+cw], acc[:cw])
		}
	}
}

func unrolledSpMMDIAI(offsets []int, diags [][]float64, n int, x []float64, xs int, dst []float64, ds int, lo, hi, s int) {
	if s == 8 {
		for i := lo; i < hi; i++ {
			dr := dst[i*ds : i*ds+8 : i*ds+8]
			dr[0], dr[1], dr[2], dr[3] = 0, 0, 0, 0
			dr[4], dr[5], dr[6], dr[7] = 0, 0, 0, 0
		}
		for k, d := range offsets {
			diag := diags[k]
			dlo, dhi := DiagRange(n, d)
			dlo, dhi = max(dlo, lo), min(dhi, hi)
			for i := dlo; i < dhi; i++ {
				v := diag[i]
				c := (i + d) * xs
				xr := x[c : c+8 : c+8]
				dr := dst[i*ds : i*ds+8 : i*ds+8]
				dr[0] += v * xr[0]
				dr[1] += v * xr[1]
				dr[2] += v * xr[2]
				dr[3] += v * xr[3]
				dr[4] += v * xr[4]
				dr[5] += v * xr[5]
				dr[6] += v * xr[6]
				dr[7] += v * xr[7]
			}
		}
		return
	}
	portableSpMMDIAI(offsets, diags, n, x, xs, dst, ds, lo, hi, s)
}

// unrolledSweepCSRI scans each row's entry list once per column tile with the
// tile's block sums in independent accumulators — for s ≤ 8 (every planner
// tile) that is a single scan feeding all columns from one gathered cache
// line per nonzero. Per-(step, color, row, k) order per column matches the
// portable sweep exactly.
func unrolledSweepCSRI(a *SweepArgs, rhat, r, y []float64, st, n, s int) {
	m := len(a.Alphas)
	ng := len(a.Start) - 1
	for i := 0; i < n; i++ {
		zeroRow(rhat[i*st:i*st+s], y[i*st:i*st+s])
	}
	for step := 1; step <= m; step++ {
		alpha := a.Alphas[m-step]
		for c := 0; c < ng; c++ {
			lo, hi := a.Start[c], a.Start[c+1]
			cache := c < ng-1
			for i := lo; i < hi; i++ {
				rs, re := a.RowPtr[i], a.RowPtr[i+1]
				di := a.Diag[i]
				for c0 := 0; c0 < s; c0 += colTile {
					cw := tileSpan(s, c0)
					var sums [colTile]float64
					for k := rs; k < re; k++ {
						ci := colidxBelow(a.ColIdx, k, lo)
						if ci < 0 {
							break
						}
						v := a.Val[k]
						rr := rhat[ci*st+c0 : ci*st+c0+cw]
						for t, rv := range rr {
							sums[t] -= v * rv
						}
					}
					rr := r[i*st+c0 : i*st+c0+cw]
					rh := rhat[i*st+c0 : i*st+c0+cw]
					yy := y[i*st+c0 : i*st+c0+cw]
					for t := range rh {
						sum := sums[t]
						rh[t] = (sum + yy[t] + alpha*rr[t]) / di
						if cache {
							yy[t] = sum
						}
					}
				}
			}
		}
		for c := ng - 2; c >= 0; c-- {
			lo, hi := a.Start[c], a.Start[c+1]
			solve := c > 0 || step == m
			for i := lo; i < hi; i++ {
				rs, re := a.RowPtr[i], a.RowPtr[i+1]
				di := a.Diag[i]
				for c0 := 0; c0 < s; c0 += colTile {
					cw := tileSpan(s, c0)
					var sums [colTile]float64
					for k := re - 1; k >= rs; k-- {
						ci := colidxAtLeast(a.ColIdx, k, hi)
						if ci < 0 {
							break
						}
						v := a.Val[k]
						rr := rhat[ci*st+c0 : ci*st+c0+cw]
						for t, rv := range rr {
							sums[t] -= v * rv
						}
					}
					rr := r[i*st+c0 : i*st+c0+cw]
					rh := rhat[i*st+c0 : i*st+c0+cw]
					yy := y[i*st+c0 : i*st+c0+cw]
					for t := range rh {
						sum := sums[t]
						if solve {
							rh[t] = (sum + yy[t] + alpha*rr[t]) / di
						}
						yy[t] = sum
					}
				}
			}
		}
	}
}
