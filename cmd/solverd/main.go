// Command solverd runs the m-step PCG solver as a resident HTTP service:
// a bounded worker pool executes concurrent solves, and a
// problem/preconditioner cache amortizes plate assembly and spectral
// interval estimation across requests.
//
// Usage:
//
//	solverd -addr :8080 [-workers 4] [-worker-budget 0] [-queue 256] [-cache 64]
//
// API:
//
//	POST /v1/solve     {"plate":{"rows":20,"cols":20},"solver":{"m":3,"coeffs":"least-squares"}}
//	                   add "async":true for 202 + job ID instead of waiting
//	POST /v1/solve     {"system":{"n":2,"i":[0,1],"j":[0,1],"v":[2,2],"f":[1,0],"key":"demo"},"solver":{"splitting":"jacobi"}}
//	                   "solver":{"backend":"dia"} forces diagonal (CYBER-style)
//	                   matvec storage; "csr" forces row storage; "auto" (the
//	                   default) probes the matrix and picks — the result's
//	                   "backend" field reports the storage actually used
//	GET  /v1/jobs/{id} job status and result
//	GET  /v1/stats     queue depth, cache hit rate, p50/p99 latency,
//	                   per-backend solve counts (solves_csr / solves_dia)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("solverd: ")
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		budget  = flag.Int("worker-budget", 0, "kernel goroutines per solve (0 = GOMAXPROCS/workers)")
		queue   = flag.Int("queue", 256, "job queue depth (further submissions get 503)")
		cache   = flag.Int("cache", 64, "problem/preconditioner cache entries")
		history = flag.Int("history", 512, "finished jobs kept for /v1/jobs lookups")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:      *workers,
		WorkerBudget: *budget,
		QueueDepth:   *queue,
		CacheSize:    *cache,
		HistoryLimit: *history,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	go func() {
		log.Printf("listening on %s (GOMAXPROCS=%d)", *addr, runtime.GOMAXPROCS(0))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down: draining in-flight requests and queued jobs")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	svc.Close()
	log.Print("bye")
}
