// Command solverd runs the m-step PCG solver as a resident HTTP service:
// a bounded worker pool executes concurrent solves, a planner turns every
// request into an explicit execution plan (matvec backend, batch tiles,
// kernel fan-out), and a problem/preconditioner cache amortizes plate
// assembly and spectral interval estimation across requests.
//
// Usage:
//
//	solverd -addr :8080 [-workers 4] [-worker-budget 0] [-queue 256]
//	        [-cache 64] [-tile-budget 8388608] [-drain 30s]
//
// API:
//
//	POST   /v1/solve     {"plate":{"rows":20,"cols":20},"solver":{"m":3,"coeffs":"least-squares"}}
//	                     add "async":true for 202 + job ID instead of waiting;
//	                     batched load cases via "plate":{"tractions":[...]} or
//	                     "system":{"fs":[[...],...]} solve as one block job
//	POST   /v1/plan      same body (minus "async"): returns the execution
//	                     plan — backend, column tiles, workers, m — the
//	                     service would run it with, without solving
//	GET    /v1/jobs/{id} job status and result; with "Accept:
//	                     text/event-stream" (or "?watch=1" for chunked JSON
//	                     lines) streams each load case's result as it
//	                     converges, ending with the finished job
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET    /v1/stats     queue depth, cache hit rate, p50/p99 latency,
//	                     per-backend solve counts, tiles executed, live
//	                     stream subscribers
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains:
// in-flight requests — including long-lived result streams — get the drain
// deadline to finish; past it, streaming connections are severed and the
// service shuts down hard so the process never wedges on a stuck client.
//
// The repro/client package is the Go SDK for this API (an implementation
// of the repro.Solver contract); repro.NewLocal embeds the same solver
// engine in process for callers that don't want a daemon at all.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("solverd: ")
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		budget     = flag.Int("worker-budget", 0, "kernel goroutines per solve (0 = GOMAXPROCS/workers)")
		tileBudget = flag.Int("tile-budget", 0, "batch tile cache budget in bytes (0 = planner default)")
		queue      = flag.Int("queue", 256, "job queue depth (further submissions get 503)")
		cache      = flag.Int("cache", 64, "problem/preconditioner cache entries")
		history    = flag.Int("history", 512, "finished jobs kept for /v1/jobs lookups")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight jobs and streams")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:         *workers,
		WorkerBudget:    *budget,
		TileBudgetBytes: *tileBudget,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		HistoryLimit:    *history,
	})

	// Every request context derives from rootCtx: canceling it is the
	// hard-stop lever that unblocks long-lived SSE/watch streams whose
	// jobs didn't finish inside the drain deadline (Shutdown alone would
	// wait on them forever).
	rootCtx, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return rootCtx },
	}

	go func() {
		log.Printf("listening on %s (GOMAXPROCS=%d)", *addr, runtime.GOMAXPROCS(0))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("shutting down: draining in-flight requests, streams and queued jobs (deadline %s)", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain deadline exceeded (%v): severing remaining streams", err)
		hardStop() // cancels every request context; stream loops exit
		if err := srv.Close(); err != nil {
			log.Printf("http close: %v", err)
		}
		svc.Abort()
	}
	// The queue drain honors the same deadline: past it, queued and
	// running jobs are canceled so Close terminates promptly instead of
	// fully solving the backlog.
	closed := make(chan struct{})
	go func() { svc.Close(); close(closed) }()
	select {
	case <-closed:
	case <-ctx.Done():
		log.Print("drain deadline exceeded: aborting queued and running jobs")
		svc.Abort()
		<-closed
	}
	log.Print("bye")
}
