// Command solverd runs the m-step PCG solver as a resident HTTP service:
// a bounded worker pool executes concurrent solves, a planner turns every
// request into an explicit execution plan (matvec backend, batch tiles,
// kernel fan-out), and a problem/preconditioner cache amortizes plate
// assembly and spectral interval estimation across requests.
//
// Usage:
//
//	solverd -addr :8080 [-node-id n1] [-workers 4] [-worker-budget 0]
//	        [-queue 256] [-cache 64] [-tile-budget 8388608] [-tuning adapt]
//	        [-drain 30s] [-log-format text] [-debug-addr :6060]
//
// API:
//
//	POST   /v1/solve     {"plate":{"rows":20,"cols":20},"solver":{"m":3,"coeffs":"least-squares"}}
//	                     add "async":true for 202 + job ID instead of waiting;
//	                     batched load cases via "plate":{"tractions":[...]} or
//	                     "system":{"fs":[[...],...]} solve as one block job
//	POST   /v1/plan      same body (minus "async"): returns the execution
//	                     plan — backend, column tiles, workers, m — the
//	                     service would run it with, without solving; for a
//	                     warm problem past the observation gate the plan
//	                     carries its self-tuning evidence (every candidate's
//	                     measured rhs/s and cost-model prediction)
//	GET    /v1/jobs/{id} job status and result; with "Accept:
//	                     text/event-stream" (or "?watch=1" for chunked JSON
//	                     lines) streams each load case's result as it
//	                     converges, ending with the finished job
//	GET    /v1/jobs/{id}/trace
//	                     the job's stage timeline (queue wait, assembly,
//	                     spectral estimation, per-tile solves, …) plus its
//	                     sampled convergence curve; replayable after the
//	                     job finishes
//	DELETE /v1/jobs/{id} cancel a queued or running job
//	GET    /v1/healthz   readiness: 200 with queue depth and uptime while
//	                     serving, 503 once draining — what a load balancer
//	                     or the solverfleet router health-checks
//	GET    /v1/stats     queue depth, cache hit rate, p50/p99 latency
//	                     (overall and split by matvec backend), per-backend
//	                     solve counts, tiles executed, live stream
//	                     subscribers
//	GET    /metrics      Prometheus text exposition: job/solve/cache
//	                     counters, queue and subscriber gauges, latency and
//	                     iteration histograms
//
// -log-format selects text (default, human-readable) or json structured
// logs; every log line carries the job or request id it concerns. When
// -debug-addr is set, a second mux on that address serves net/http/pprof
// under /debug/pprof/ and expvar under /debug/vars — bound separately so
// profiling endpoints are never exposed on the public API address.
//
// On SIGINT/SIGTERM the daemon stops accepting connections and drains:
// in-flight requests — including long-lived result streams — get the drain
// deadline to finish; past it, streaming connections are severed and the
// service shuts down hard so the process never wedges on a stuck client.
//
// The repro/client package is the Go SDK for this API (an implementation
// of the repro.Solver contract); repro.NewLocal embeds the same solver
// engine in process for callers that don't want a daemon at all.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/plan"
	"repro/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		nodeID     = flag.String("node-id", "", "fleet node identity: prefixes job IDs so a fleet router can route job lookups back here (must match the router's member name; empty = standalone)")
		debugAddr  = flag.String("debug-addr", "", "debug listen address serving /debug/pprof and /debug/vars (empty = disabled)")
		logFormat  = flag.String("log-format", "text", "log output format: text or json")
		workers    = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		budget     = flag.Int("worker-budget", 0, "kernel goroutines per solve (0 = GOMAXPROCS/workers)")
		tileBudget = flag.Int("tile-budget", 0, "batch tile cache budget in bytes (0 = planner default)")
		queue      = flag.Int("queue", 256, "job queue depth (further submissions get 503)")
		cache      = flag.Int("cache", 64, "problem/preconditioner cache entries")
		tuning     = flag.String("tuning", "adapt", "plan feedback default for requests that don't pin solver.tuning: off, observe or adapt")
		history    = flag.Int("history", 512, "finished jobs kept for /v1/jobs lookups")
		drain      = flag.Duration("drain", 30*time.Second, "shutdown drain deadline for in-flight jobs and streams")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		slog.Error("unknown -log-format (want text or json)", "got", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	if _, err := plan.ParseTuning(strings.ToLower(*tuning)); err != nil {
		slog.Error("invalid -tuning (want off, observe or adapt)", "got", *tuning)
		os.Exit(2)
	}

	svc := service.New(service.Config{
		NodeID:          *nodeID,
		Workers:         *workers,
		WorkerBudget:    *budget,
		TileBudgetBytes: *tileBudget,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		HistoryLimit:    *history,
		Tuning:          strings.ToLower(*tuning),
		Logger:          logger,
	})

	if *debugAddr != "" {
		go serveDebug(logger, *debugAddr)
	}

	// Every request context derives from rootCtx: canceling it is the
	// hard-stop lever that unblocks long-lived SSE/watch streams whose
	// jobs didn't finish inside the drain deadline (Shutdown alone would
	// wait on them forever).
	rootCtx, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return rootCtx },
	}

	go func() {
		logger.Info("listening", "addr", *addr, "gomaxprocs", runtime.GOMAXPROCS(0))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("listen failed", "err", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down: draining in-flight requests, streams and queued jobs", "deadline", drain.String())
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("drain deadline exceeded: severing remaining streams", "err", err)
		hardStop() // cancels every request context; stream loops exit
		if err := srv.Close(); err != nil {
			logger.Warn("http close", "err", err)
		}
		svc.Abort()
	}
	// The queue drain honors the same deadline: past it, queued and
	// running jobs are canceled so Close terminates promptly instead of
	// fully solving the backlog.
	closed := make(chan struct{})
	go func() { svc.Close(); close(closed) }()
	select {
	case <-closed:
	case <-ctx.Done():
		logger.Warn("drain deadline exceeded: aborting queued and running jobs")
		svc.Abort()
		<-closed
	}
	logger.Info("bye")
}

// serveDebug runs the profiling/introspection mux: net/http/pprof and
// expvar, on their own address so they are never reachable through the
// public API listener. Registered on a private mux (not DefaultServeMux)
// to keep the exposure explicit.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	logger.Info("debug endpoints listening", "addr", addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("debug listen failed", "err", err)
	}
}
