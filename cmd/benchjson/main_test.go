package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Fake CPU @ 2.10GHz
BenchmarkKernelSpMM/csr/column/s=8/active-8         100   2000000 ns/op   0.80 Gflop-pairs/s
BenchmarkKernelSpMM/csr/interleaved/s=8/active-8    300   1000000 ns/op   1.90 Gflop-pairs/s
PASS
`

func parseSample(t *testing.T, text string) Report {
	t.Helper()
	rep, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchLines(t *testing.T) {
	rep := parseSample(t, sample)
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Fake") {
		t.Fatalf("context lines: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Pkg != "repro" || b.Procs != 8 || b.Runs != 300 {
		t.Fatalf("benchmark line: %+v", b)
	}
	if b.Metrics["ns/op"] != 1e6 || b.Metrics["Gflop-pairs/s"] != 1.9 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
}

func TestDiff(t *testing.T) {
	old := parseSample(t, sample)
	cur := parseSample(t, strings.NewReplacer(
		"2000000", "1500000",
		"interleaved", "panel",
	).Replace(sample))
	var sb strings.Builder
	diff(&sb, old, cur)
	out := sb.String()
	if !strings.Contains(out, "-25.0%") {
		t.Fatalf("missing ns/op delta:\n%s", out)
	}
	if !strings.Contains(out, "(new)") || !strings.Contains(out, "(removed)") {
		t.Fatalf("renamed benchmark not surfaced on both sides:\n%s", out)
	}
}
