package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Fake CPU @ 2.10GHz
BenchmarkKernelSpMM/csr/column/s=8/active-8         100   2000000 ns/op   0.80 Gflop-pairs/s
BenchmarkKernelSpMM/csr/interleaved/s=8/active-8    300   1000000 ns/op   1.90 Gflop-pairs/s
PASS
`

func parseSample(t *testing.T, text string) Report {
	t.Helper()
	rep, err := parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseBenchLines(t *testing.T) {
	rep := parseSample(t, sample)
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !strings.Contains(rep.CPU, "Fake") {
		t.Fatalf("context lines: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("want 2 benchmarks, got %d", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[1]
	if b.Pkg != "repro" || b.Procs != 8 || b.Runs != 300 {
		t.Fatalf("benchmark line: %+v", b)
	}
	if b.Metrics["ns/op"] != 1e6 || b.Metrics["Gflop-pairs/s"] != 1.9 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
}

func TestDiff(t *testing.T) {
	old := parseSample(t, sample)
	cur := parseSample(t, strings.NewReplacer(
		"2000000", "1500000",
		"interleaved", "panel",
	).Replace(sample))
	var sb strings.Builder
	diff(&sb, old, cur)
	out := sb.String()
	if !strings.Contains(out, "-25.0%") {
		t.Fatalf("missing ns/op delta:\n%s", out)
	}
	if !strings.Contains(out, "(new)") || !strings.Contains(out, "(removed)") {
		t.Fatalf("renamed benchmark not surfaced on both sides:\n%s", out)
	}
}

func TestMetricDirection(t *testing.T) {
	cases := map[string]int{
		"ns/op":         +1,
		"B/op":          +1,
		"allocs/op":     +1,
		"rhs/s":         -1,
		"solves/s":      -1,
		"Gflop-pairs/s": -1,
		"iterations":    0,
		"simulated-s":   0,
	}
	for unit, want := range cases {
		if got := metricDirection(unit); got != want {
			t.Errorf("metricDirection(%q) = %d, want %d", unit, got, want)
		}
	}
}

func TestRegressionsGate(t *testing.T) {
	old := parseSample(t, sample)

	// 50% slower ns/op and 40% lower throughput on the first benchmark:
	// both directions must trip a 25% gate.
	cur := parseSample(t, strings.NewReplacer(
		"2000000 ns/op   0.80", "3000000 ns/op   0.48",
	).Replace(sample))
	regs := regressions(old, cur, 25)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %d: %v", len(regs), regs)
	}
	for _, r := range regs {
		if !strings.Contains(r, "BenchmarkKernelSpMM/csr/column/s=8") {
			t.Errorf("regression names wrong benchmark: %s", r)
		}
	}

	// The same run clears a 60% gate.
	if regs := regressions(old, cur, 60); len(regs) != 0 {
		t.Fatalf("60%% gate should pass, got %v", regs)
	}

	// Improvements never trip the gate, whichever direction the unit runs.
	faster := parseSample(t, strings.NewReplacer(
		"2000000 ns/op   0.80", "1000000 ns/op   1.60",
	).Replace(sample))
	if regs := regressions(old, faster, 1); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}
