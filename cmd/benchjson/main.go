// Command benchjson converts `go test -bench` text output into a JSON
// document, so CI can archive benchmark results as a machine-readable
// artifact and diff them across commits:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | go run ./cmd/benchjson -o BENCH.json
//
// Every metric on a benchmark line is kept under its Go-reported unit —
// the standard ns/op, B/op and allocs/op alongside custom b.ReportMetric
// series like solves/s, rhs/s, iterations or simulated-s — together with
// the goos/goarch/cpu context lines and the package each benchmark ran in.
//
// With -diff the run is additionally compared against a committed baseline
// report (a previous run's JSON), printing old → new with the percentage
// change for every metric both runs share:
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | go run ./cmd/benchjson -diff BENCH_PR7.json
//
// -fail-over turns the diff into a regression gate: when any shared metric
// regresses by more than the given percentage — slower ns/op, more B/op or
// allocs/op, fewer of a /s throughput unit — the offenders are listed and
// the exit status is 1. Units whose direction is ambiguous (iterations,
// simulated-s, …) are never gated.
//
//	... | go run ./cmd/benchjson -diff BENCH_PR7.json -fail-over 25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: its name (sub-benchmarks keep their
// /slash/path), the GOMAXPROCS suffix, the iteration count, and every
// value-unit metric pair the line reported.
type Result struct {
	Pkg     string             `json:"pkg"`
	Name    string             `json:"name"`
	Procs   int                `json:"procs,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole run.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	base := flag.String("diff", "", "baseline report (JSON from a previous run) to compare against")
	failOver := flag.Float64("fail-over", 0, "with -diff: exit 1 when a direction-aware metric regresses by more than this percentage (0 = report only)")
	flag.Parse()

	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	failed := false
	if *base != "" {
		baseline, err := loadReport(*base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		diff(os.Stdout, baseline, report)
		if *failOver > 0 {
			for _, r := range regressions(baseline, report, *failOver) {
				fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
				failed = true
			}
		}
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "" {
		if *base == "" { // diff mode already owns stdout
			os.Stdout.Write(b)
		}
	} else {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
	}
	if failed {
		os.Exit(1)
	}
}

// metricDirection reports whether a unit regresses upward (+1: ns/op, B/op,
// allocs/op — more is worse), downward (-1: any /s throughput — less is
// worse), or has no gateable direction (0).
func metricDirection(unit string) int {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return +1
	}
	if strings.HasSuffix(unit, "/s") {
		return -1
	}
	return 0
}

// regressions lists every shared, direction-aware metric that moved the
// wrong way by more than pct percent of the baseline value.
func regressions(old, cur Report, pct float64) []string {
	key := func(r Result) string { return r.Pkg + "." + r.Name }
	prev := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		prev[key(r)] = r
	}
	var out []string
	for _, r := range cur.Benchmarks {
		o, ok := prev[key(r)]
		if !ok {
			continue
		}
		units := make([]string, 0, len(r.Metrics))
		for u := range r.Metrics {
			if _, shared := o.Metrics[u]; shared {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			dir := metricDirection(u)
			ov, nv := o.Metrics[u], r.Metrics[u]
			if dir == 0 || ov == 0 {
				continue
			}
			change := (nv - ov) / ov * 100 * float64(dir)
			if change > pct {
				out = append(out, fmt.Sprintf("%s %s %.4g -> %.4g (%+.1f%% over the %.4g%% gate)",
					r.Name, u, ov, nv, (nv-ov)/ov*100, pct))
			}
		}
	}
	return out
}

// loadReport reads a previously archived JSON report.
func loadReport(path string) (Report, error) {
	var rep Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// diff prints every metric the two reports share, old → new with the
// percentage change, plus the benchmarks only one side has (renames and new
// kernels should be visible, not silently dropped). Benchmarks are matched
// by package + name, metrics by unit.
func diff(w io.Writer, old, cur Report) {
	key := func(r Result) string { return r.Pkg + "." + r.Name }
	prev := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		prev[key(r)] = r
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	fmt.Fprintf(w, "%-72s %-14s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, r := range cur.Benchmarks {
		seen[key(r)] = true
		o, ok := prev[key(r)]
		if !ok {
			fmt.Fprintf(w, "%-72s %-14s %14s\n", r.Name, "(new)", "-")
			continue
		}
		units := make([]string, 0, len(r.Metrics))
		for u := range r.Metrics {
			if _, shared := o.Metrics[u]; shared {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			ov, nv := o.Metrics[u], r.Metrics[u]
			delta := "-"
			if ov != 0 {
				delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
			}
			fmt.Fprintf(w, "%-72s %-14s %14.4g %14.4g %9s\n", r.Name, u, ov, nv, delta)
		}
	}
	for _, r := range old.Benchmarks {
		if !seen[key(r)] {
			fmt.Fprintf(w, "%-72s %-14s %14s\n", r.Name, "(removed)", "-")
		}
	}
}

func parse(r io.Reader) (Report, error) {
	var rep Report
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBench(line)
			if ok {
				res.Pkg = pkg
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}
	return rep, nil
}

// parseBench parses one result line of the form
//
//	BenchmarkName/sub-8   100   123.4 ns/op   55.0 solves/s   16 B/op   2 allocs/op
//
// Lines that merely announce a benchmark (no fields yet) are skipped.
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	res := Result{Name: fields[0], Metrics: map[string]float64{}}
	// Split the -N GOMAXPROCS suffix off the name, when present.
	if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Runs = runs
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, len(res.Metrics) > 0
}
