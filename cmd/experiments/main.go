// Command experiments regenerates every table and figure of the paper's
// evaluation section.
//
// Usage:
//
//	experiments [table1|table2|table3|ineq|cond|overhead|irregular|baseline|scaling|figures|all] [-quick]
//
// -quick shrinks Table 2's problem sizes for fast runs; the full sweep uses
// the paper's a = 20, 41, 62, 80 unit-square plates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/femachine"
	"repro/internal/vectorsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	quick := flag.Bool("quick", false, "smaller Table 2 sizes for a fast run")
	flag.Parse()
	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}

	run := map[string]func(bool) error{
		"table1":    table1,
		"table2":    table2,
		"table3":    table3,
		"ineq":      ineq,
		"cond":      cond,
		"overhead":  overhead,
		"figures":   figures,
		"irregular": irregular,
		"baseline":  baseline,
		"scaling":   scaling,
		"omega":     omega,
		"machines":  machines,
	}
	if what == "all" {
		for _, name := range []string{"table1", "table2", "table3", "ineq", "cond", "overhead", "irregular", "baseline", "scaling", "omega", "machines", "figures"} {
			if err := run[name](*quick); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Println()
		}
		return
	}
	fn, ok := run[what]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; want table1|table2|table3|ineq|cond|overhead|irregular|baseline|scaling|figures|all\n", what)
		os.Exit(2)
	}
	if err := fn(*quick); err != nil {
		log.Fatal(err)
	}
}

func table2Sizes(quick bool) []int {
	if quick {
		return []int{10, 20, 30}
	}
	return []int{20, 41, 62, 80} // the paper's a values (v = ⌈a²/3⌉)
}

func table1(bool) error {
	res, err := experiments.Table1(20, 20, 4)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func runTable2(quick bool) (experiments.Table2Result, error) {
	return experiments.Table2(vectorsim.Cyber203(), table2Sizes(quick), experiments.PaperTable2Specs(), 1e-6)
}

func table2(quick bool) error {
	res, err := runTable2(quick)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func table3(bool) error {
	res, err := experiments.Table3(6, 6, []int{1, 2, 5}, experiments.PaperTable3Specs(), 1e-6, femachine.DefaultTimeModel())
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func ineq(quick bool) error {
	res, err := runTable2(quick)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderInequality(experiments.Inequality42(res)))
	return nil
}

func cond(quick bool) error {
	size := 16
	if quick {
		size = 10
	}
	res, err := experiments.ConditionStudy(size, size, []experiments.MSpec{
		{M: 1}, {M: 2}, {M: 3}, {M: 4},
		{M: 2, Param: true}, {M: 3, Param: true}, {M: 4, Param: true},
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func overhead(bool) error {
	res, err := experiments.OverheadStudy(6, 6, []int{1, 2, 5}, 1e-6)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func irregular(quick bool) error {
	size := 17
	if quick {
		size = 9
	}
	res, err := experiments.IrregularStudy(size, []experiments.MSpec{
		{M: 0}, {M: 1}, {M: 2}, {M: 4, Param: true},
	})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func baseline(quick bool) error {
	size := 12
	if quick {
		size = 8
	}
	res, err := experiments.BaselineStudy(size, size, 1e-6)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func scaling(quick bool) error {
	ks := []int{1, 2, 3, 4}
	if quick {
		ks = []int{1, 2}
	}
	res, err := experiments.ScalingStudy(6, ks, 1e-6)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func omega(quick bool) error {
	size := 14
	if quick {
		size = 8
	}
	res, err := experiments.OmegaStudy(size, size, 1, []float64{0.6, 0.8, 1.0, 1.2, 1.4, 1.6})
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func machines(quick bool) error {
	a := 20
	if quick {
		a = 10
	}
	res, err := experiments.CompareMachines(a, []experiments.MSpec{
		{M: 0}, {M: 1}, {M: 2, Param: true}, {M: 4, Param: true}, {M: 6, Param: true},
	}, 1e-6)
	if err != nil {
		return err
	}
	fmt.Print(res.Render())
	return nil
}

func figures(bool) error {
	out, err := experiments.AllFigures()
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}
