// Command solverfleet fronts a cluster of solverd nodes with
// cache-affinity routing: a consistent-hash ring keyed by the engine's
// problem cache key sends repeated solves of one problem to the node whose
// cache already holds it warm, so N nodes behave as N disjoint warm caches
// rather than N cold ones.
//
// Usage:
//
//	solverfleet -addr :8090 \
//	    -nodes n1=http://host1:8080,n2=http://host2:8080,n3=http://host3:8080 \
//	    [-vnodes 128] [-check 2s] [-probe-timeout 2s] [-log-format text]
//
// Each -nodes entry is name=url; the name must match that node's
// solverd -node-id (job IDs are prefixed with it, which is how the router
// sends job lookups back to the issuing node).
//
// The router serves the same /v1 API as a single solverd — the Go SDK
// works against it unchanged — plus fleet-wide aggregation:
//
//	POST   /v1/solve, /v1/plan      routed by problem cache key
//	GET    /v1/jobs/{id}[...]       routed by job-id prefix (SSE passes through)
//	GET    /v1/stats                summed across the fleet, per-node detail
//	GET    /v1/healthz              200 while any node is healthy
//	GET    /metrics                 merged exposition with node="..." labels
//
// Members are health-checked through /v1/healthz every -check; a node that
// fails a probe (or a proxy attempt) leaves the ring immediately, moving
// only its own keys — consistent hashing keeps every other node's warm
// cache intact. The SDK's retry + stream-resume layer rides on top: a node
// dying mid-batch surfaces as a resubmitted job on a survivor, not a
// failed batch.
package main

import (
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		nodes     = flag.String("nodes", "", "fleet roster: comma-separated name=url pairs (required)")
		vnodes    = flag.Int("vnodes", 0, "consistent-hash virtual nodes per member (0 = default)")
		check     = flag.Duration("check", 2*time.Second, "health-check interval (negative disables the background checker)")
		probeTO   = flag.Duration("probe-timeout", 2*time.Second, "per-probe timeout for health checks and stats fan-out")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
	)
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		slog.Error("unknown -log-format (want text or json)", "got", *logFormat)
		os.Exit(2)
	}
	logger := slog.New(handler)

	members, err := parseNodes(*nodes)
	if err != nil {
		logger.Error("invalid -nodes", "err", err)
		os.Exit(2)
	}

	router, err := fleet.New(fleet.Config{
		Members:       members,
		VNodes:        *vnodes,
		CheckInterval: *check,
		ProbeTimeout:  *probeTO,
		Logger:        logger,
	})
	if err != nil {
		logger.Error("fleet init failed", "err", err)
		os.Exit(2)
	}
	defer router.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		logger.Info("fleet router listening", "addr", *addr, "members", len(members))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("listen failed", "err", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
	// The router holds no job state — nodes own their queues — so closing
	// the listener is the whole drain story here.
	if err := srv.Close(); err != nil {
		logger.Warn("http close", "err", err)
	}
	logger.Info("bye")
}

// parseNodes parses the -nodes roster ("n1=http://a:8080,n2=http://b:8080").
func parseNodes(s string) ([]fleet.Member, error) {
	if strings.TrimSpace(s) == "" {
		return nil, errors.New("at least one name=url pair required")
	}
	var out []fleet.Member
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, url, ok := strings.Cut(pair, "=")
		if !ok || name == "" || url == "" {
			return nil, errors.New("malformed entry " + pair + " (want name=url)")
		}
		out = append(out, fleet.Member{Name: strings.TrimSpace(name), URL: strings.TrimSpace(url)})
	}
	return out, nil
}
