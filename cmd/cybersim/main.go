// Command cybersim runs the m-step SSOR PCG method for one plate size on
// the simulated CYBER 203/205 and reports the cost decomposition of the
// paper's eq. (4.1): T_m = Setup + N_m(A + mB).
//
// Usage:
//
//	cybersim -a 41 -m 4 -param -machine 203
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/vectorsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cybersim: ")
	var (
		a       = flag.Int("a", 41, "rows (= columns) of nodes on the unit square plate")
		m       = flag.Int("m", 4, "preconditioner steps (0 = plain CG)")
		param   = flag.Bool("param", false, "use least-squares parametrized coefficients")
		machine = flag.String("machine", "203", "machine: 203 | 205")
		tol     = flag.Float64("tol", 1e-6, "‖Δu‖∞ stopping tolerance")
	)
	flag.Parse()

	var model vectorsim.Model
	switch *machine {
	case "203":
		model = vectorsim.Cyber203()
	case "205":
		model = vectorsim.Cyber205()
	default:
		log.Fatalf("unknown machine %q (want 203|205)", *machine)
	}

	run, err := vectorsim.SimulatePlate(model, *a, *a, *m, *param, *tol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %s   plate: %d×%d nodes   max vector length v = %d\n",
		model.Name, *a, *a, run.VectorLen)
	fmt.Printf("method: m = %s (%s)\n", run.Label(), run.Precond)
	fmt.Printf("iterations N_m = %d\n", run.Iterations)
	fmt.Printf("cost model (eq. 4.1): setup %.3e s, A = %.3e s/iter, B = %.3e s/step\n",
		run.Cost.Setup, run.Cost.A, run.Cost.B)
	fmt.Printf("inner-product share of A: %.1f%%   B/A = %.3f\n",
		100*run.Cost.InnerProductShare, run.Cost.B/run.Cost.A)
	fmt.Printf("simulated time T = %.4f s\n", run.Seconds)
	fmt.Printf("vector efficiency at v: %.1f%%   at 6v: %.1f%%\n",
		100*model.Efficiency(run.VectorLen), 100*model.Efficiency(6*run.VectorLen))
}
