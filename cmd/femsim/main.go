// Command femsim runs the m-step SSOR PCG method on the simulated Finite
// Element Machine and reports times, speedups and the overhead breakdown.
//
// Usage:
//
//	femsim -rows 6 -cols 6 -m 2 -procs 1,2,5 [-param] [-ring]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/poly"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("femsim: ")
	var (
		rows     = flag.Int("rows", 6, "rows of nodes")
		cols     = flag.Int("cols", 6, "columns of nodes")
		m        = flag.Int("m", 2, "preconditioner steps (0 = plain CG)")
		param    = flag.Bool("param", false, "least-squares parametrized coefficients")
		procSpec = flag.String("procs", "1,2,5", "comma-separated processor counts")
		tol      = flag.Float64("tol", 1e-6, "‖Δu‖∞ stopping tolerance")
		ring     = flag.Bool("ring", false, "replace the sum/max circuit with an O(P) software ring")
	)
	flag.Parse()

	var procs []int
	for _, s := range strings.Split(*procSpec, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			log.Fatalf("bad processor count %q", s)
		}
		procs = append(procs, p)
	}

	plate, err := fem.NewPlate(*rows, *cols, fem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var alphas []float64
	if *m > 0 {
		if *param {
			sys := core.System{K: plate.KColored, F: plate.ColoredRHS(), GroupStart: plate.Ordering.GroupStart[:]}
			sp, err := core.BuildSplitting(sys, core.Config{Splitting: core.SSORMulticolor})
			if err != nil {
				log.Fatal(err)
			}
			iv, err := eigen.EstimateInterval(sp, 0.02, 1)
			if err != nil {
				log.Fatal(err)
			}
			a, err := poly.LeastSquares(*m, iv.Lo, iv.Hi)
			if err != nil {
				log.Fatal(err)
			}
			alphas = a.Coeffs
			fmt.Printf("least-squares α over [%.4f, %.4f]: %.4v\n", iv.Lo, iv.Hi, alphas)
		} else {
			alphas = poly.Ones(*m).Coeffs
		}
	}

	tm := femachine.DefaultTimeModel()
	tm.SoftwareReduce = *ring
	fmt.Printf("plate: %d×%d nodes, %d equations   m = %d   reduce: %s\n",
		*rows, *cols, plate.N(), *m, map[bool]string{false: "sum/max circuit", true: "software ring"}[*ring])
	fmt.Printf("%3s %8s %12s %8s %12s %12s %12s\n", "P", "iters", "time(s)", "speedup", "precondComm", "haloComm", "reduceWait")

	var t1 float64
	for _, p := range procs {
		strat := mesh.RowStrips
		if p > *rows/2 {
			strat = mesh.ColStrips
		}
		cfg := femachine.Config{P: p, Strategy: strat, M: *m, Alphas: alphas, Tol: *tol, MaxIter: 100000, Time: tm}
		mach, err := femachine.New(plate, cfg)
		if err != nil {
			log.Fatalf("P=%d: %v", p, err)
		}
		res, err := mach.Run()
		if err != nil {
			log.Fatalf("P=%d: %v", p, err)
		}
		if p == procs[0] {
			t1 = res.SimTime * float64(p) // normalize if first count isn't 1
			if procs[0] == 1 {
				t1 = res.SimTime
			}
		}
		fmt.Printf("%3d %8d %12.4f %8.2f %12.4f %12.4f %12.4f\n",
			p, res.Iterations, res.SimTime, t1/res.SimTime,
			res.PrecondCommTime, res.HaloCommTime, res.ReduceWaitTime)
	}
}
