// Command mstepcg solves the paper's plane-stress plate problem with the
// m-step preconditioned conjugate gradient method and reports convergence
// statistics.
//
// Usage:
//
//	mstepcg -rows 20 -cols 20 -m 4 -coeffs ls -tol 1e-6 [-splitting multicolor] [-history]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mstepcg: ")
	var (
		rows      = flag.Int("rows", 20, "rows of nodes")
		cols      = flag.Int("cols", 20, "columns of nodes")
		m         = flag.Int("m", 3, "preconditioner steps (0 = plain CG)")
		coeffs    = flag.String("coeffs", "ones", "coefficients: ones | ls | cheb")
		split     = flag.String("splitting", "multicolor", "splitting: multicolor | natural | jacobi")
		omega     = flag.Float64("omega", 1, "natural SSOR relaxation parameter")
		tol       = flag.Float64("tol", 1e-6, "‖Δu‖∞ stopping tolerance (paper's test)")
		maxIter   = flag.Int("maxiter", 0, "iteration cap (0 = 10n)")
		history   = flag.Bool("history", false, "print per-iteration convergence history")
		condition = flag.Bool("cond", false, "estimate κ(M⁻¹K) from the run")
	)
	flag.Parse()

	cfg := core.Config{M: *m, Omega: *omega, Tol: *tol, MaxIter: *maxIter, History: *history}
	switch *coeffs {
	case "ones":
		cfg.Coeffs = core.Unparametrized
	case "ls":
		cfg.Coeffs = core.LeastSquaresCoeffs
	case "cheb":
		cfg.Coeffs = core.ChebyshevCoeffs
	default:
		log.Fatalf("unknown -coeffs %q (want ones|ls|cheb)", *coeffs)
	}
	switch *split {
	case "multicolor":
		cfg.Splitting = core.SSORMulticolor
	case "natural":
		cfg.Splitting = core.SSORNatural
	case "jacobi":
		cfg.Splitting = core.JacobiSplitting
	default:
		log.Fatalf("unknown -splitting %q (want multicolor|natural|jacobi)", *split)
	}

	sys, plate, err := core.PlateSystem(*rows, *cols, fem.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plate: %d×%d nodes, %d equations, %d nonzeros\n",
		*rows, *cols, plate.N(), plate.KColored.NNZ())

	res, err := core.Solve(sys, cfg)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	fmt.Printf("preconditioner: %s\n", res.Precond)
	if res.Alphas.M() > 0 && cfg.Coeffs != core.Unparametrized {
		fmt.Printf("interval: [%.4f, %.4f]  α = %.4v\n", res.Interval.Lo, res.Interval.Hi, res.Alphas.Coeffs)
	}
	fmt.Printf("iterations: %d  converged: %v\n", res.Stats.Iterations, res.Stats.Converged)
	fmt.Printf("final ‖Δu‖∞: %.3e  final ‖r‖/‖f‖: %.3e\n", res.Stats.FinalUDiff, res.Stats.FinalRelRes)
	fmt.Printf("inner products: %d  matvecs: %d  preconditioner applications: %d\n",
		res.Stats.InnerProducts, res.Stats.MatVecs, res.Stats.PrecondApps)
	if *history {
		for i := range res.Stats.UDiffHistory {
			fmt.Printf("  iter %4d: ‖Δu‖∞ = %.3e  ‖r‖/‖f‖ = %.3e\n",
				i+1, res.Stats.UDiffHistory[i], res.Stats.ResidualHistory[i])
		}
	}
	if *condition {
		lo, hi, kappa, err := eigen.CondFromCGStats(res.Stats)
		if err != nil {
			log.Fatalf("condition estimate: %v", err)
		}
		fmt.Printf("spectrum of M⁻¹K ≈ [%.4g, %.4g], κ ≈ %.2f\n", lo, hi, kappa)
	}
}
