package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
)

// Request is the one unit of work every Solver implementation accepts. It
// names the problem in exactly one of three ways:
//
//   - Problem: an already-assembled *Problem. The local solver consumes it
//     zero-copy and keys it into the engine cache by identity, so repeated
//     solves of the same *Problem skip assembly and spectral-interval
//     estimation; the HTTP client serializes it back to the spec that
//     reconstructs it (see Wire).
//   - Plate: the paper's plane-stress plate problem, declaratively.
//   - System: a general sparse SPD system in coordinate form.
//
// The non-Problem fields are exactly the /v1 wire vocabulary: a Request
// without a Problem marshals to the JSON body POST /v1/solve accepts.
type Request struct {
	// Problem is a prebuilt problem (in-process fast path). Never
	// serialized.
	Problem *Problem `json:"-"`
	// Fs optionally solves a batch of right-hand sides against Problem in
	// one block job (Problem.F's assembled load is used when empty). Only
	// valid alongside Problem; spec requests batch via PlateSpec.Tractions
	// or SystemSpec.Fs instead. Never serialized.
	Fs [][]float64 `json:"-"`

	Plate  *PlateSpec  `json:"plate,omitempty"`
	System *SystemSpec `json:"system,omitempty"`
	Solver SolverSpec  `json:"solver"`
	// OmitSolution drops solution vectors from results (status and
	// convergence stats only).
	OmitSolution bool `json:"omit_solution,omitempty"`

	// config, when set, is the full typed configuration the Solve /
	// SolveBatch convenience wrappers run with — knobs the wire vocabulary
	// cannot express (pinned interval, iteration history, estimation
	// seed). In-process only.
	config *core.Config
}

// CaseEvent is one streamed per-case completion, delivered to SolveStream
// callbacks as block columns retire: Case identifies the right-hand side,
// Result its outcome. The terminal event of every stream instead carries
// the finished job in Done (with Case = -1), after every case has been
// delivered exactly once.
type CaseEvent = engine.CaseEvent

// Solver is the one solver contract: a session that amortizes setup —
// assembly, structure probing, spectral-interval estimation, preconditioner
// pools — across many solves, streams per-case results as they converge,
// plans without solving, and reports operational statistics. Two
// interchangeable implementations exist: NewLocal runs the engine in
// process, and client.New drives a remote solverd over its /v1 HTTP API.
// The same Request produces the same JobResult through either (modulo
// timing and the in-process-only CGStats detail).
type Solver interface {
	// Solve runs one request to completion. Canceling ctx cancels the
	// underlying job (it stops at its next iteration boundary). A non-nil
	// error may still be accompanied by a partial result for per-case
	// failures.
	Solve(ctx context.Context, req Request) (JobResult, error)
	// SolveStream runs one request, invoking on for every per-case
	// completion the moment its column retires, then once more with the
	// terminal Done event. Canceling ctx cancels the job and returns
	// ctx.Err(). on is called sequentially from one goroutine.
	SolveStream(ctx context.Context, req Request, on func(CaseEvent)) error
	// Plan resolves the execution plan the solver would run req with —
	// matvec backend, batch column tiles, kernel fan-out, step count —
	// without solving anything.
	Plan(ctx context.Context, req Request) (PlanInfo, error)
	// Stats reports the session's operational counters (queue, cache
	// hits/misses, per-backend solves, latency percentiles).
	Stats() (ServiceStats, error)
	// Trace retrieves a job's stage timeline and sampled convergence curve
	// by id (JobResult.JobID, or the Done view's ID from SolveStream). It
	// works while the job runs — open stages report provisional durations —
	// and replays unchanged after completion, for as long as the session
	// retains the job in its finished-job history.
	Trace(ctx context.Context, jobID string) (TraceInfo, error)
	// Close drains the session and releases its resources.
	Close() error
}

// LocalConfig sizes an in-process solver session: worker pool, queue,
// cache, tile budget. The zero value picks the same defaults as the
// daemon.
type LocalConfig = engine.Config

// Local is the in-process Solver: the same engine the HTTP daemon serves —
// worker pool, sharded problem cache, planner memoization, streaming
// column fan-out — embedded in the calling process, so embedders get
// warm-cache throughput, batch tiling and per-case streaming without
// running a daemon.
type Local struct {
	eng *engine.Engine
}

var _ Solver = (*Local)(nil)

// NewLocal starts an in-process solver session. Call Close to drain queued
// jobs and stop the workers.
func NewLocal(cfg LocalConfig) *Local {
	return &Local{eng: engine.New(cfg)}
}

// Solve implements Solver.
func (l *Local) Solve(ctx context.Context, req Request) (JobResult, error) {
	job, err := l.submit(req)
	if err != nil {
		return JobResult{}, err
	}
	select {
	case <-job.Done():
	case <-ctx.Done():
		// The caller is the only holder of this job: propagate the
		// cancellation into the solve loop instead of leaking it.
		job.Cancel()
		return JobResult{}, ctx.Err()
	}
	if res := job.Result(); res != nil {
		return *res, job.Err()
	}
	return JobResult{}, job.Err()
}

// SolveStream implements Solver.
func (l *Local) SolveStream(ctx context.Context, req Request, on func(CaseEvent)) error {
	job, err := l.submit(req)
	if err != nil {
		return err
	}
	replay, ch, stop := l.eng.Watch(job)
	defer stop()
	for _, ev := range replay {
		on(ev)
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				v := l.eng.ViewOf(job)
				on(CaseEvent{Case: -1, Done: &v})
				return job.Err()
			}
			on(ev)
		case <-ctx.Done():
			job.Cancel()
			return ctx.Err()
		}
	}
}

// Plan implements Solver.
func (l *Local) Plan(_ context.Context, req Request) (PlanInfo, error) {
	ereq, err := req.engineRequest()
	if err != nil {
		return PlanInfo{}, err
	}
	return l.eng.PlanRequest(ereq)
}

// Stats implements Solver.
func (l *Local) Stats() (ServiceStats, error) { return l.eng.Stats(), nil }

// Trace implements Solver.
func (l *Local) Trace(_ context.Context, jobID string) (TraceInfo, error) {
	ti, ok := l.eng.Trace(jobID)
	if !ok {
		return TraceInfo{}, fmt.Errorf("repro: unknown job %s", jobID)
	}
	return ti, nil
}

// Close implements Solver: it drains queued jobs and stops the workers.
func (l *Local) Close() error {
	l.eng.Close()
	return nil
}

// submit converts and enqueues a request.
func (l *Local) submit(req Request) (*engine.Job, error) {
	ereq, err := req.engineRequest()
	if err != nil {
		return nil, err
	}
	return l.eng.Submit(ereq)
}

// engineRequest lowers the public request onto the engine's vocabulary:
// spec requests pass through, prebuilt problems become zero-copy Prebuilt
// payloads keyed by problem identity and carrying the problem's memoized
// structure probe and spectral interval, so a warm problem never redoes
// setup — not even across solver sessions or cache evictions.
func (r Request) engineRequest() (engine.Request, error) {
	ereq := engine.Request{
		Plate:        r.Plate,
		System:       r.System,
		Solver:       r.Solver,
		OmitSolution: r.OmitSolution,
	}
	if r.Problem == nil {
		if r.config != nil {
			return engine.Request{}, fmt.Errorf("repro: a full Config needs a prebuilt Problem")
		}
		if len(r.Fs) > 0 {
			return engine.Request{}, fmt.Errorf("repro: Request.Fs needs Request.Problem (spec requests batch via PlateSpec.Tractions or SystemSpec.Fs)")
		}
		return ereq, nil
	}
	if r.Plate != nil || r.System != nil {
		return engine.Request{}, fmt.Errorf("repro: request needs exactly one of Problem, Plate or System")
	}
	p := r.Problem
	var cfg core.Config
	if r.config != nil {
		cfg = *r.config
	} else {
		var err error
		cfg, err = r.Solver.CoreConfig(p.plate != nil)
		if err != nil {
			return engine.Request{}, err
		}
	}
	if cfg.Interval == nil && cfg.M >= 1 && cfg.Coeffs != Unparametrized {
		// Pin the problem's memoized spectral interval (estimating it on
		// first use): repeated solves — and engine cache misses — never
		// re-run the power method. Estimation failures are left for the
		// engine's preconditioner build to report with full context.
		if iv, err := p.intervalFor(cfg); err == nil {
			cfg.Interval = &iv
		}
	}
	ereq.Prebuilt = &engine.Prebuilt{
		Sys:    p.sys,
		Plate:  p.plate,
		Key:    p.id,
		Fs:     r.Fs,
		Probe:  p.probeRef(),
		Config: &cfg,
	}
	return ereq, nil
}

// Wire returns the declarative (JSON-serializable) form of the request:
// spec requests pass through unchanged, and a prebuilt Problem is replaced
// by the spec that reconstructs it — plate problems by their PlateSpec
// recipe, builder problems by their coordinate triplets. The HTTP client
// SDK calls this before marshaling, which is what makes a Problem request
// behave identically through the local and remote solvers. Plate problems
// with an arbitrary Fs batch are not wire-representable (the wire form
// batches plates via Tractions) and return an error.
func (r Request) Wire() (Request, error) {
	if r.Problem == nil {
		if len(r.Fs) > 0 {
			return Request{}, fmt.Errorf("repro: Request.Fs needs Request.Problem")
		}
		return r, nil
	}
	if r.Plate != nil || r.System != nil {
		return Request{}, fmt.Errorf("repro: request needs exactly one of Problem, Plate or System")
	}
	if r.config != nil {
		return Request{}, fmt.Errorf("repro: a full Config is in-process only; use the Solver spec for wire requests")
	}
	out := r
	out.Problem, out.Fs = nil, nil
	p := r.Problem
	if p.plate != nil {
		if len(r.Fs) > 0 {
			return Request{}, fmt.Errorf("repro: arbitrary right-hand-side batches on plate problems are not wire-representable (batch via PlateSpec.Tractions)")
		}
		spec := p.plateSpec
		out.Plate = &spec
		return out, nil
	}
	k := p.sys.K
	sys := &SystemSpec{N: k.Rows}
	sys.I = make([]int, 0, k.NNZ())
	sys.J = make([]int, 0, k.NNZ())
	sys.V = make([]float64, 0, k.NNZ())
	for i := 0; i < k.Rows; i++ {
		for idx := k.RowPtr[i]; idx < k.RowPtr[i+1]; idx++ {
			sys.I = append(sys.I, i)
			sys.J = append(sys.J, k.ColIdx[idx])
			sys.V = append(sys.V, k.Val[idx])
		}
	}
	if len(r.Fs) > 0 {
		sys.Fs = r.Fs
	} else {
		sys.F = p.F()
	}
	// No cache key: problem identity is process-local, and a shared daemon
	// must not trust two processes to mean the same matrix by it. Callers
	// that want server-side caching use a SystemSpec with their own Key.
	out.System = sys
	return out, nil
}
