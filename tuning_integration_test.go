package repro_test

import (
	"context"
	"reflect"
	"testing"

	"repro"
)

// TestTuningEvidenceLocalAndRemote is the end-to-end check for the
// self-tuning planner's explanation surface: after enough warm solves of
// one problem, the plan — through the in-process solver AND through
// POST /v1/plan via the HTTP client SDK — explains its decision with the
// candidate table (measured throughput, observation counts, the chosen
// plan). Observe mode keeps execution on the static plan, so everything
// except the measured numbers is deterministic.
func TestTuningEvidenceLocalAndRemote(t *testing.T) {
	local, remote := solverPair(t)
	ctx := context.Background()

	req := repro.Request{
		Plate:  &repro.PlateSpec{Rows: 10, Cols: 10, Tractions: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}},
		Solver: repro.SolverSpec{M: 2, Coeffs: "least-squares", Tol: 1e-7, Tuning: "observe"},
	}

	for name, sv := range map[string]repro.Solver{"local": local, "remote": remote} {
		t.Run(name, func(t *testing.T) {
			// Cold: no evidence yet — the plan is purely static.
			cold, err := sv.Plan(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if cold.Tuning != "observe" || cold.Source != "static" || len(cold.Candidates) != 0 {
				t.Fatalf("cold plan already carries evidence: %+v", cold)
			}

			// Warm the problem past the observation gate.
			var last repro.JobResult
			for i := 0; i < 7; i++ {
				res, err := sv.Solve(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Converged {
					t.Fatalf("solve %d not converged", i)
				}
				last = res
			}

			// Warm: the offline plan explains itself.
			warm, err := sv.Plan(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Tuning != "observe" || warm.Source != "static" {
				t.Fatalf("warm plan policy/source wrong: %+v", warm)
			}
			if len(warm.Candidates) < 2 {
				t.Fatalf("warm plan has %d candidates, want the neighborhood", len(warm.Candidates))
			}
			chosen, measured := 0, 0
			for _, c := range warm.Candidates {
				if c.Chosen {
					chosen++
				}
				if c.Observations > 0 {
					measured++
					if c.MeasuredRHSPerSec <= 0 || c.SecondsPerIteration <= 0 {
						t.Fatalf("measured candidate without throughput evidence: %+v", c)
					}
				}
			}
			if chosen != 1 {
				t.Fatalf("%d chosen candidates, want exactly 1", chosen)
			}
			if measured == 0 {
				t.Fatal("no candidate carries measurements after 7 solves")
			}

			// Observe mode: execution stayed on the static structure.
			if last.Plan == nil {
				t.Fatal("result missing plan")
			}
			if !reflect.DeepEqual(last.Plan.Tiles, cold.Tiles) || last.Plan.M != cold.M {
				t.Fatalf("observe mode changed the executed plan:\n got %+v\nwant %+v", last.Plan, cold)
			}
			// And the executed result carries the same evidence surface.
			if last.Plan.Tuning != "observe" || len(last.Plan.Candidates) == 0 {
				t.Fatalf("executed plan missing evidence: %+v", last.Plan)
			}
		})
	}
}

// TestTuningOffParityLocalVsClient extends the parity contract to the
// tuning knob: with tuning off both solvers return the static plan,
// identical across the boundary and across repeated warm solves.
func TestTuningOffParityLocalVsClient(t *testing.T) {
	local, remote := solverPair(t)
	ctx := context.Background()

	req := repro.Request{
		Plate:  &repro.PlateSpec{Rows: 10, Cols: 10, Tractions: []float64{1, 2, 3, 4, 5, 6, 7, 8}},
		Solver: repro.SolverSpec{M: 2, Coeffs: "least-squares", Tol: 1e-7, Tuning: "off"},
	}
	var plans []repro.PlanInfo
	for i := 0; i < 7; i++ {
		if _, err := local.Solve(ctx, req); err != nil {
			t.Fatal(err)
		}
		if _, err := remote.Solve(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	lp, err := local.Plan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := remote.Plan(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, lp, rp)
	for _, p := range plans {
		if p.Tuning != "off" || p.Source != "static" || len(p.Candidates) != 0 {
			t.Fatalf("off-mode plan not static: %+v", p)
		}
	}
	if !reflect.DeepEqual(lp, rp) {
		t.Fatalf("off-mode plans differ across the boundary:\nlocal:  %+v\nremote: %+v", lp, rp)
	}
}
