package repro

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/sparse"
	"repro/internal/vectorsim"
)

// Re-exported configuration enums and types. Aliases keep the public
// surface thin while the mechanics live in internal packages.
type (
	// Config selects the solver variant; see the field documentation on
	// core.Config.
	Config = core.Config
	// Result reports a solve.
	Result = core.Result
	// Stats is the CG iteration report.
	Stats = cg.Stats
	// Interval is a spectral interval [λ₁, λₙ] for P⁻¹K.
	Interval = eigen.Interval
	// Material is the plane-stress material of the plate problem.
	Material = fem.Material
	// CyberModel is the CYBER 203/205 timing model.
	CyberModel = vectorsim.Model
	// FEMachineConfig configures a Finite Element Machine run.
	FEMachineConfig = femachine.Config
	// FEMachineResult reports a Finite Element Machine run.
	FEMachineResult = femachine.Result
)

// Splitting kinds.
const (
	SSORMulticolor  = core.SSORMulticolor
	SSORNatural     = core.SSORNatural
	JacobiSplitting = core.JacobiSplitting
)

// Coefficient kinds (§2.2 parametrizations).
const (
	Unparametrized     = core.Unparametrized
	LeastSquaresCoeffs = core.LeastSquaresCoeffs
	ChebyshevCoeffs    = core.ChebyshevCoeffs
)

// Matrix storage backends for the CG matvec path (Config.Backend). The
// default, BackendAuto, probes the matrix structure and picks diagonal
// (CYBER-style) storage for banded-diagonal systems, CSR for scattered
// fill, and the domain-decomposed parallel path for plate problems too
// large for one cache-resident matrix; Result.Backend reports the storage
// a solve actually ran on. BackendDecomposed (plates only) partitions the
// mesh into subdomains, each run by a dedicated goroutine with halo
// exchange and tree-reduced inner products — the paper's Finite Element
// Machine executed for real; Config.Subdomains pins its processor count.
const (
	BackendAuto       = core.BackendAuto
	BackendCSR        = core.BackendCSR
	BackendDIA        = core.BackendDIA
	BackendDecomposed = core.BackendDecomposed
)

// Problem is an SPD system ready for the m-step PCG solver. Plate problems
// carry their mesh so solutions can be mapped back to nodes and the
// parallel-machine simulators can partition them.
//
// A Problem memoizes its own setup artifacts: the planner's structure
// probe and the spectral-interval estimates the parametrized coefficient
// criteria need (one per splitting/ω/seed combination). Repeated solves of
// the same *Problem — through Solve, SolveBatch, or any local Solver
// session — therefore never redo that work, even across sessions or after
// an engine cache eviction. A Problem is safe for concurrent use.
type Problem struct {
	sys   core.System
	plate *fem.Plate
	// plateSpec is the recipe that reconstructs a plate problem over the
	// wire (zero-valued for builder problems; see Request.Wire).
	plateSpec PlateSpec
	// id names the problem in local engine caches. Identity-based: two
	// Problems never share an entry, and a Problem never collides with a
	// declarative-spec key.
	id string

	probeOnce sync.Once
	probeVal  plan.Probe

	ivMu   sync.Mutex
	ivMemo map[intervalMemoKey]eigen.Interval
}

// intervalMemoKey is the part of a Config the spectral interval of P⁻¹K
// depends on: the splitting (with its relaxation parameter) and the
// estimation seed. Coefficients, tolerances and execution knobs do not
// perturb the estimate.
type intervalMemoKey struct {
	splitting core.SplittingKind
	omega     float64
	seed      int64
}

// problemSeq numbers Problems for cache identity.
var problemSeq atomic.Uint64

func newProblem(sys core.System, plate *fem.Plate, spec PlateSpec) *Problem {
	return &Problem{
		sys:       sys,
		plate:     plate,
		plateSpec: spec,
		id:        fmt.Sprintf("problem-%d", problemSeq.Add(1)),
	}
}

// probeRef returns the problem's memoized structure probe, scanning the
// matrix pattern on first use.
func (p *Problem) probeRef() *plan.Probe {
	p.probeOnce.Do(func() { p.probeVal = plan.NewProbe(p.sys.K) })
	return &p.probeVal
}

// intervalFor returns the problem's memoized spectral interval for the
// splitting cfg selects, estimating it (power method on P⁻¹K, the same
// estimator the engine runs) on first use.
func (p *Problem) intervalFor(cfg core.Config) (eigen.Interval, error) {
	omega := cfg.Omega
	if omega == 0 {
		omega = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	key := intervalMemoKey{splitting: cfg.Splitting, omega: omega, seed: seed}
	p.ivMu.Lock()
	defer p.ivMu.Unlock()
	if iv, ok := p.ivMemo[key]; ok {
		return iv, nil
	}
	sp, err := core.BuildSplitting(p.sys, cfg)
	if err != nil {
		return eigen.Interval{}, err
	}
	iv, err := eigen.EstimateInterval(sp, 0.02, seed)
	if err != nil {
		return eigen.Interval{}, err
	}
	if p.ivMemo == nil {
		p.ivMemo = make(map[intervalMemoKey]eigen.Interval)
	}
	p.ivMemo[key] = iv
	return iv, nil
}

// NewPlateProblem assembles the paper's plane-stress test problem on a
// rows×cols-node unit square plate (left edge clamped, right edge loaded)
// in the 6-color multicolor ordering.
func NewPlateProblem(rows, cols int) (*Problem, error) {
	sys, plate, err := core.PlateSystem(rows, cols, fem.Options{})
	if err != nil {
		return nil, err
	}
	return newProblem(sys, plate, PlateSpec{Rows: rows, Cols: cols}), nil
}

// NewPlateProblemWithMaterial assembles the plate with a custom material
// and traction.
func NewPlateProblemWithMaterial(rows, cols int, mat Material, traction float64) (*Problem, error) {
	sys, plate, err := core.PlateSystem(rows, cols, fem.Options{Mat: mat, Traction: traction})
	if err != nil {
		return nil, err
	}
	spec := PlateSpec{Rows: rows, Cols: cols, E: mat.E, Nu: mat.Nu, T: mat.T, Traction: traction}
	return newProblem(sys, plate, spec), nil
}

// MatrixBuilder assembles a general sparse SPD system for the solver
// (duplicate entries are summed, as finite element assembly needs).
type MatrixBuilder struct {
	n   int
	coo *sparse.COO
}

// NewMatrixBuilder returns a builder for an n×n system.
func NewMatrixBuilder(n int) *MatrixBuilder {
	return &MatrixBuilder{n: n, coo: sparse.NewCOO(n, n)}
}

// Add accumulates v into entry (i, j).
func (b *MatrixBuilder) Add(i, j int, v float64) { b.coo.Add(i, j, v) }

// Problem finalizes the matrix with right-hand side f. General problems
// use the Jacobi or natural-SSOR splittings (no multicolor structure).
func (b *MatrixBuilder) Problem(f []float64) (*Problem, error) {
	k := b.coo.ToCSR()
	if len(f) != b.n {
		return nil, fmt.Errorf("repro: rhs length %d != n %d", len(f), b.n)
	}
	if !k.IsSymmetric(1e-12) {
		return nil, fmt.Errorf("repro: matrix is not symmetric")
	}
	return newProblem(core.System{K: k, F: f}, nil, PlateSpec{}), nil
}

// N returns the number of unknowns.
func (p *Problem) N() int { return p.sys.K.Rows }

// throwawayLocal returns the minimal single-worker solver session backing
// the package-level convenience wrappers: one worker, serial kernels
// (matching the historical default of Config.Workers = 0), one cache slot
// for the wrapped problem.
func throwawayLocal() *Local {
	return NewLocal(LocalConfig{
		Workers: 1, WorkerBudget: 1, QueueDepth: 1,
		CacheSize: 1, HistoryLimit: 1, LatencyWindow: 16,
	})
}

// resultShell maps the job-level fields shared by every Result a job
// yields — preconditioner, backend, interval, coefficients.
func resultShell(jr *JobResult) Result {
	res := Result{
		Precond:  jr.Precond,
		Backend:  jr.Backend,
		Interval: eigen.Interval{Lo: jr.IntervalLo, Hi: jr.IntervalHi},
	}
	if jr.Alphas != nil {
		res.Alphas = *jr.Alphas
	}
	return res
}

// resultFromJob reconstructs the library Result from an engine job result
// (the full CG stats ride along on the in-process path).
func resultFromJob(jr *JobResult) Result {
	res := resultShell(jr)
	res.U = jr.U
	if jr.CGStats != nil {
		res.Stats = *jr.CGStats
	}
	return res
}

// Solve runs the configured m-step PCG method. It is a thin wrapper over a
// throwaway local solver session, so it shares the Solver pipeline —
// planner, backends, tiling — and the problem's memoized setup (structure
// probe, spectral interval): repeated Solve calls on one *Problem skip
// interval estimation entirely. Long-lived callers solving many requests
// should hold a NewLocal session instead, which additionally pools
// preconditioners and caches across problems.
func Solve(p *Problem, cfg Config) (Result, error) {
	l := throwawayLocal()
	defer l.Close()
	req := Request{Problem: p, config: &cfg}
	job, err := l.submit(req)
	if err != nil {
		return Result{}, err
	}
	<-job.Done()
	jr := job.Result()
	if jr == nil {
		return Result{}, job.Err()
	}
	return resultFromJob(jr), job.Err()
}

// F returns a copy of the problem's assembled right-hand side (in the
// solver's ordering) — the base load vector batched solves rescale or
// replace.
func (p *Problem) F() []float64 {
	out := make([]float64, len(p.sys.F))
	copy(out, p.sys.F)
	return out
}

// SolveBatch runs the configured m-step PCG method against every
// right-hand side in fs at once: the splitting, polynomial coefficients
// and spectral-interval estimate are built a single time, and each block
// iteration performs one matrix–multivector product and one block
// preconditioner sweep shared by all still-unconverged columns — solving s
// load cases against one stiffness matrix for far less than s sequential
// solves. Result j corresponds to fs[j] and matches Solve on the same
// right-hand side to machine precision.
//
// The returned error is nil only when every column converged; partial
// results are still returned alongside a joined per-column error.
//
// Like Solve, SolveBatch is a thin wrapper over a throwaway local solver
// session sharing the problem's memoized setup; hold a NewLocal session
// for sustained batch traffic.
func SolveBatch(p *Problem, fs [][]float64, cfg Config) ([]Result, error) {
	if len(fs) == 0 {
		return nil, fmt.Errorf("repro: batch solve needs at least one right-hand side")
	}
	l := throwawayLocal()
	defer l.Close()
	req := Request{Problem: p, Fs: fs, config: &cfg}
	job, err := l.submit(req)
	if err != nil {
		return nil, err
	}
	<-job.Done()
	jr := job.Result()
	if jr == nil {
		return nil, job.Err()
	}
	out := make([]Result, len(fs))
	if len(fs) == 1 {
		out[0] = resultFromJob(jr)
		return out, job.Err()
	}
	if len(jr.Cases) < len(fs) {
		// The job failed before its per-case table was populated.
		return nil, job.Err()
	}
	for j := range fs {
		c := jr.Cases[j]
		out[j] = resultShell(jr)
		out[j].U = c.U
		if c.CGStats != nil {
			out[j].Stats = *c.CGStats
		}
	}
	return out, job.Err()
}

// NodeDisplacements maps a plate solution (Result.U, colored ordering) back
// to per-node displacements: the returned slices are indexed by free-node
// position with u and v components. Returns an error for non-plate
// problems.
func (p *Problem) NodeDisplacements(res Result) (nodes []int, u, v []float64, err error) {
	if p.plate == nil {
		return nil, nil, nil, fmt.Errorf("repro: not a plate problem")
	}
	natural := p.plate.UncolorSolution(res.U)
	nodes = p.plate.Free
	u = make([]float64, len(nodes))
	v = make([]float64, len(nodes))
	for k := range nodes {
		u[k] = natural[2*k]
		v[k] = natural[2*k+1]
	}
	return nodes, u, v, nil
}

// EstimateCondition returns (λmin, λmax, κ) of the preconditioned operator
// measured from a converged run's CG coefficients.
func EstimateCondition(res Result) (lo, hi, kappa float64, err error) {
	return eigen.CondFromCGStats(res.Stats)
}

// Cyber203 and Cyber205 return the vector machine models of §3.1.
func Cyber203() CyberModel { return vectorsim.Cyber203() }

// Cyber205 returns the CYBER 205 model.
func Cyber205() CyberModel { return vectorsim.Cyber205() }

// SimulateOnCyber runs the m-step multicolor SSOR PCG for an a×a plate on
// the simulated vector machine, returning iterations and simulated
// seconds (a Table 2 cell).
func SimulateOnCyber(model CyberModel, a, m int, parametrized bool, tol float64) (iters int, seconds float64, err error) {
	run, err := vectorsim.SimulatePlate(model, a, a, m, parametrized, tol)
	if err != nil {
		return 0, 0, err
	}
	return run.Iterations, run.Seconds, nil
}

// RunOnFEMachine executes the problem on the simulated Finite Element
// Machine (plate problems only — the machine needs the mesh partition).
func RunOnFEMachine(p *Problem, cfg FEMachineConfig) (FEMachineResult, error) {
	if p.plate == nil {
		return FEMachineResult{}, fmt.Errorf("repro: the Finite Element Machine needs a plate problem")
	}
	mach, err := femachine.New(p.plate, cfg)
	if err != nil {
		return FEMachineResult{}, err
	}
	return mach.Run()
}

// DefaultFEMachineTime returns the default Finite Element Machine timing
// model.
func DefaultFEMachineTime() femachine.TimeModel { return femachine.DefaultTimeModel() }

// Partition strategies for the Finite Element Machine and the decomposed
// backend.
const (
	RowStrips = mesh.RowStrips
	ColStrips = mesh.ColStrips
	Blocks    = mesh.Blocks
)

// Solver service types: the resident daemon form of the library. A Service
// runs concurrent solves on a bounded worker pool, caches assembled
// problems and estimated spectral intervals across requests, and serves an
// HTTP/JSON API (Service.Handler; see cmd/solverd).
type (
	// Service is a running solver service.
	Service = service.Service
	// ServiceConfig sizes the worker pool, queue, and cache.
	ServiceConfig = service.Config
	// SolveRequest is one unit of service work (a plate or a general
	// system, plus solver settings).
	SolveRequest = service.SolveRequest
	// PlateSpec requests the paper's plane-stress plate problem.
	PlateSpec = service.PlateSpec
	// SystemSpec requests a general sparse SPD solve in coordinate form.
	SystemSpec = service.SystemSpec
	// SolverSpec selects the m-step PCG variant by name.
	SolverSpec = service.SolverSpec
	// JobView is an immutable snapshot of a submitted job.
	JobView = service.JobView
	// JobState is the lifecycle of a submitted job.
	JobState = service.JobState
	// JobResult reports a finished solve, including the resolved
	// execution plan and per-case outcomes for batches.
	JobResult = service.JobResult
	// CaseResult reports one right-hand side of a batched solve.
	CaseResult = service.CaseResult
	// PlanInfo is the execution plan the planner resolved for a request:
	// matvec backend, batch column tiles, kernel fan-out, step count.
	PlanInfo = service.PlanInfo
	// ServiceStats is the service health report (queue depth, cache hit
	// rate, latency percentiles, tiles executed, stream subscribers).
	ServiceStats = service.Stats
	// Health is the GET /v1/healthz readiness payload: queue headroom,
	// running count, draining flag and uptime for load balancers and the
	// fleet router's health checker.
	Health = service.Health
	// TraceInfo is a job's observability record: the stage timeline (queue
	// wait, assembly, spectral estimation, per-tile solves, …) plus the
	// sampled per-iteration convergence curve. Solver.Trace retrieves it by
	// job id, during and after the solve.
	TraceInfo = service.TraceInfo
)

// Job lifecycle states (JobView.State).
const (
	JobQueued  = service.JobQueued
	JobRunning = service.JobRunning
	JobDone    = service.JobDone
	JobFailed  = service.JobFailed
)

// NewService starts a solver service. Call Close on the returned service to
// drain queued jobs and stop the workers.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }
