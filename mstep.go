package repro

import (
	"fmt"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/eigen"
	"repro/internal/fem"
	"repro/internal/femachine"
	"repro/internal/mesh"
	"repro/internal/service"
	"repro/internal/sparse"
	"repro/internal/vectorsim"
)

// Re-exported configuration enums and types. Aliases keep the public
// surface thin while the mechanics live in internal packages.
type (
	// Config selects the solver variant; see the field documentation on
	// core.Config.
	Config = core.Config
	// Result reports a solve.
	Result = core.Result
	// Stats is the CG iteration report.
	Stats = cg.Stats
	// Interval is a spectral interval [λ₁, λₙ] for P⁻¹K.
	Interval = eigen.Interval
	// Material is the plane-stress material of the plate problem.
	Material = fem.Material
	// CyberModel is the CYBER 203/205 timing model.
	CyberModel = vectorsim.Model
	// FEMachineConfig configures a Finite Element Machine run.
	FEMachineConfig = femachine.Config
	// FEMachineResult reports a Finite Element Machine run.
	FEMachineResult = femachine.Result
)

// Splitting kinds.
const (
	SSORMulticolor  = core.SSORMulticolor
	SSORNatural     = core.SSORNatural
	JacobiSplitting = core.JacobiSplitting
)

// Coefficient kinds (§2.2 parametrizations).
const (
	Unparametrized     = core.Unparametrized
	LeastSquaresCoeffs = core.LeastSquaresCoeffs
	ChebyshevCoeffs    = core.ChebyshevCoeffs
)

// Matrix storage backends for the CG matvec path (Config.Backend). The
// default, BackendAuto, probes the matrix structure and picks diagonal
// (CYBER-style) storage for banded-diagonal systems and CSR for scattered
// fill; Result.Backend reports the storage a solve actually ran on.
const (
	BackendAuto = core.BackendAuto
	BackendCSR  = core.BackendCSR
	BackendDIA  = core.BackendDIA
)

// Problem is an SPD system ready for the m-step PCG solver. Plate problems
// carry their mesh so solutions can be mapped back to nodes and the
// parallel-machine simulators can partition them.
type Problem struct {
	sys   core.System
	plate *fem.Plate
}

// NewPlateProblem assembles the paper's plane-stress test problem on a
// rows×cols-node unit square plate (left edge clamped, right edge loaded)
// in the 6-color multicolor ordering.
func NewPlateProblem(rows, cols int) (*Problem, error) {
	sys, plate, err := core.PlateSystem(rows, cols, fem.Options{})
	if err != nil {
		return nil, err
	}
	return &Problem{sys: sys, plate: plate}, nil
}

// NewPlateProblemWithMaterial assembles the plate with a custom material
// and traction.
func NewPlateProblemWithMaterial(rows, cols int, mat Material, traction float64) (*Problem, error) {
	sys, plate, err := core.PlateSystem(rows, cols, fem.Options{Mat: mat, Traction: traction})
	if err != nil {
		return nil, err
	}
	return &Problem{sys: sys, plate: plate}, nil
}

// MatrixBuilder assembles a general sparse SPD system for the solver
// (duplicate entries are summed, as finite element assembly needs).
type MatrixBuilder struct {
	n   int
	coo *sparse.COO
}

// NewMatrixBuilder returns a builder for an n×n system.
func NewMatrixBuilder(n int) *MatrixBuilder {
	return &MatrixBuilder{n: n, coo: sparse.NewCOO(n, n)}
}

// Add accumulates v into entry (i, j).
func (b *MatrixBuilder) Add(i, j int, v float64) { b.coo.Add(i, j, v) }

// Problem finalizes the matrix with right-hand side f. General problems
// use the Jacobi or natural-SSOR splittings (no multicolor structure).
func (b *MatrixBuilder) Problem(f []float64) (*Problem, error) {
	k := b.coo.ToCSR()
	if len(f) != b.n {
		return nil, fmt.Errorf("repro: rhs length %d != n %d", len(f), b.n)
	}
	if !k.IsSymmetric(1e-12) {
		return nil, fmt.Errorf("repro: matrix is not symmetric")
	}
	return &Problem{sys: core.System{K: k, F: f}}, nil
}

// N returns the number of unknowns.
func (p *Problem) N() int { return p.sys.K.Rows }

// Solve runs the configured m-step PCG method.
func Solve(p *Problem, cfg Config) (Result, error) {
	return core.Solve(p.sys, cfg)
}

// F returns a copy of the problem's assembled right-hand side (in the
// solver's ordering) — the base load vector batched solves rescale or
// replace.
func (p *Problem) F() []float64 {
	out := make([]float64, len(p.sys.F))
	copy(out, p.sys.F)
	return out
}

// SolveBatch runs the configured m-step PCG method against every
// right-hand side in fs at once: the splitting, polynomial coefficients
// and spectral-interval estimate are built a single time, and each block
// iteration performs one matrix–multivector product and one block
// preconditioner sweep shared by all still-unconverged columns — solving s
// load cases against one stiffness matrix for far less than s sequential
// solves. Result j corresponds to fs[j] and matches Solve on the same
// right-hand side to machine precision.
//
// The returned error is nil only when every column converged; partial
// results are still returned alongside a joined per-column error.
func SolveBatch(p *Problem, fs [][]float64, cfg Config) ([]Result, error) {
	return core.SolveBatch(p.sys, fs, cfg)
}

// NodeDisplacements maps a plate solution (Result.U, colored ordering) back
// to per-node displacements: the returned slices are indexed by free-node
// position with u and v components. Returns an error for non-plate
// problems.
func (p *Problem) NodeDisplacements(res Result) (nodes []int, u, v []float64, err error) {
	if p.plate == nil {
		return nil, nil, nil, fmt.Errorf("repro: not a plate problem")
	}
	natural := p.plate.UncolorSolution(res.U)
	nodes = p.plate.Free
	u = make([]float64, len(nodes))
	v = make([]float64, len(nodes))
	for k := range nodes {
		u[k] = natural[2*k]
		v[k] = natural[2*k+1]
	}
	return nodes, u, v, nil
}

// EstimateCondition returns (λmin, λmax, κ) of the preconditioned operator
// measured from a converged run's CG coefficients.
func EstimateCondition(res Result) (lo, hi, kappa float64, err error) {
	return eigen.CondFromCGStats(res.Stats)
}

// Cyber203 and Cyber205 return the vector machine models of §3.1.
func Cyber203() CyberModel { return vectorsim.Cyber203() }

// Cyber205 returns the CYBER 205 model.
func Cyber205() CyberModel { return vectorsim.Cyber205() }

// SimulateOnCyber runs the m-step multicolor SSOR PCG for an a×a plate on
// the simulated vector machine, returning iterations and simulated
// seconds (a Table 2 cell).
func SimulateOnCyber(model CyberModel, a, m int, parametrized bool, tol float64) (iters int, seconds float64, err error) {
	run, err := vectorsim.SimulatePlate(model, a, a, m, parametrized, tol)
	if err != nil {
		return 0, 0, err
	}
	return run.Iterations, run.Seconds, nil
}

// RunOnFEMachine executes the problem on the simulated Finite Element
// Machine (plate problems only — the machine needs the mesh partition).
func RunOnFEMachine(p *Problem, cfg FEMachineConfig) (FEMachineResult, error) {
	if p.plate == nil {
		return FEMachineResult{}, fmt.Errorf("repro: the Finite Element Machine needs a plate problem")
	}
	mach, err := femachine.New(p.plate, cfg)
	if err != nil {
		return FEMachineResult{}, err
	}
	return mach.Run()
}

// DefaultFEMachineTime returns the default Finite Element Machine timing
// model.
func DefaultFEMachineTime() femachine.TimeModel { return femachine.DefaultTimeModel() }

// Partition strategies for the Finite Element Machine.
const (
	RowStrips = mesh.RowStrips
	ColStrips = mesh.ColStrips
)

// Solver service types: the resident daemon form of the library. A Service
// runs concurrent solves on a bounded worker pool, caches assembled
// problems and estimated spectral intervals across requests, and serves an
// HTTP/JSON API (Service.Handler; see cmd/solverd).
type (
	// Service is a running solver service.
	Service = service.Service
	// ServiceConfig sizes the worker pool, queue, and cache.
	ServiceConfig = service.Config
	// SolveRequest is one unit of service work (a plate or a general
	// system, plus solver settings).
	SolveRequest = service.SolveRequest
	// PlateSpec requests the paper's plane-stress plate problem.
	PlateSpec = service.PlateSpec
	// SystemSpec requests a general sparse SPD solve in coordinate form.
	SystemSpec = service.SystemSpec
	// SolverSpec selects the m-step PCG variant by name.
	SolverSpec = service.SolverSpec
	// JobView is an immutable snapshot of a submitted job.
	JobView = service.JobView
	// JobResult reports a finished solve, including the resolved
	// execution plan and per-case outcomes for batches.
	JobResult = service.JobResult
	// CaseResult reports one right-hand side of a batched solve.
	CaseResult = service.CaseResult
	// PlanInfo is the execution plan the planner resolved for a request:
	// matvec backend, batch column tiles, kernel fan-out, step count.
	PlanInfo = service.PlanInfo
	// ServiceStats is the service health report (queue depth, cache hit
	// rate, latency percentiles, tiles executed, stream subscribers).
	ServiceStats = service.Stats
)

// NewService starts a solver service. Call Close on the returned service to
// drain queued jobs and stop the workers.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }
