package repro_test

import (
	"context"
	"math"
	"testing"

	"repro"
)

func TestPublicQuickstart(t *testing.T) {
	p, err := repro.NewPlateProblem(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2*10*9 {
		t.Fatalf("N = %d", p.N())
	}
	res, err := repro.Solve(p, repro.Config{M: 3, Coeffs: repro.LeastSquaresCoeffs, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("not converged")
	}
	nodes, u, v, err := p.NodeDisplacements(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != len(u) || len(u) != len(v) {
		t.Fatal("displacement lengths")
	}
}

func TestPublicSolveBatch(t *testing.T) {
	p, err := repro.NewPlateProblem(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := p.F()
	// Three load cases: the assembled load, halved, and reversed.
	fs := make([][]float64, 3)
	for j, scale := range []float64{1, 0.5, -2} {
		fs[j] = make([]float64, len(base))
		for i, v := range base {
			fs[j][i] = scale * v
		}
	}
	cfg := repro.Config{M: 3, Coeffs: repro.LeastSquaresCoeffs, Tol: 1e-8}
	results, err := repro.SolveBatch(p, fs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	want, err := repro.Solve(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j, res := range results {
		if !res.Stats.Converged {
			t.Fatalf("case %d not converged", j)
		}
		// Case j's solution must match a scalar solve of the same load
		// case; compare via linearity against the base solve.
		scale := []float64{1, 0.5, -2}[j]
		var maxd float64
		for i := range res.U {
			if d := math.Abs(res.U[i] - scale*want.U[i]); d > maxd {
				maxd = d
			}
		}
		if maxd > 1e-6 {
			t.Fatalf("case %d deviates from scaled scalar solve by %g", j, maxd)
		}
	}

	if _, err := repro.SolveBatch(p, nil, cfg); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := repro.SolveBatch(p, [][]float64{{1, 2}}, cfg); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestPublicGeneralMatrix(t *testing.T) {
	// Small 1-D Laplacian through the public builder.
	n := 20
	b := repro.NewMatrixBuilder(n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
			b.Add(i-1, i, -1)
		}
	}
	f := make([]float64, n)
	f[n/2] = 1
	p, err := b.Problem(f)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Solve(p, repro.Config{M: 1, Splitting: repro.JacobiSplitting, RelResidualTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("not converged")
	}
}

func TestPublicBuilderRejectsAsymmetric(t *testing.T) {
	b := repro.NewMatrixBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	b.Add(0, 1, 0.5)
	if _, err := b.Problem([]float64{1, 1}); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
	b2 := repro.NewMatrixBuilder(2)
	b2.Add(0, 0, 1)
	b2.Add(1, 1, 1)
	if _, err := b2.Problem([]float64{1}); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestPublicConditionEstimate(t *testing.T) {
	p, err := repro.NewPlateProblem(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Solve(p, repro.Config{M: 0, RelResidualTol: 1e-12, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, kappa, err := repro.EstimateCondition(res)
	if err != nil {
		t.Fatal(err)
	}
	if !(0 < lo && lo < hi) || kappa < 1 {
		t.Fatalf("condition estimate (%g, %g, %g)", lo, hi, kappa)
	}
}

func TestPublicCyberSim(t *testing.T) {
	i0, t0, err := repro.SimulateOnCyber(repro.Cyber203(), 12, 0, false, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	i3, t3, err := repro.SimulateOnCyber(repro.Cyber203(), 12, 3, true, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if i3 >= i0 {
		t.Fatalf("3P iterations %d not below CG %d", i3, i0)
	}
	if t0 <= 0 || t3 <= 0 {
		t.Fatal("nonpositive simulated times")
	}
	if repro.Cyber205().VecOp(1000) >= repro.Cyber203().VecOp(1000) {
		t.Fatal("205 should be faster")
	}
}

func TestPublicFEMachine(t *testing.T) {
	p, err := repro.NewPlateProblem(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := repro.Solve(p, repro.Config{M: 0, Tol: 1e-6, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.RunOnFEMachine(p, repro.FEMachineConfig{
		P: 5, Strategy: repro.ColStrips, M: 0,
		Tol: 1e-6, MaxIter: 10000, Time: repro.DefaultFEMachineTime(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != serial.Stats.Iterations {
		t.Fatalf("machine %d iterations vs serial %d", res.Iterations, serial.Stats.Iterations)
	}
	for i := range res.U {
		if math.Abs(res.U[i]-serial.U[i]) > 5e-7 {
			t.Fatalf("solution deviates at %d", i)
		}
	}
}

func TestPublicFEMachineRejectsGeneralProblem(t *testing.T) {
	b := repro.NewMatrixBuilder(4)
	for i := 0; i < 4; i++ {
		b.Add(i, i, 2)
	}
	p, err := b.Problem(make([]float64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.RunOnFEMachine(p, repro.FEMachineConfig{P: 1, Tol: 1e-6, Time: repro.DefaultFEMachineTime()}); err == nil {
		t.Fatal("general problem accepted by the machine")
	}
	if _, _, _, err := p.NodeDisplacements(repro.Result{}); err == nil {
		t.Fatal("NodeDisplacements on general problem accepted")
	}
}

func TestPublicPlateRejectsBadInput(t *testing.T) {
	if _, err := repro.NewPlateProblem(1, 5); err == nil {
		t.Fatal("degenerate plate accepted")
	}
	// Invalid material: negative Young's modulus.
	if _, err := repro.NewPlateProblemWithMaterial(5, 5, repro.Material{E: -1, Nu: 0.3, T: 1}, 1); err == nil {
		t.Fatal("negative Young's modulus accepted")
	}
	// Poisson ratio at the incompressible limit.
	if _, err := repro.NewPlateProblemWithMaterial(5, 5, repro.Material{E: 1, Nu: 0.5, T: 1}, 1); err == nil {
		t.Fatal("ν = 0.5 accepted")
	}
}

func TestPublicSolveRejectsBadOmega(t *testing.T) {
	p, err := repro.NewPlateProblem(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, omega := range []float64{-0.5, 2, 3} {
		if _, err := repro.Solve(p, repro.Config{M: 2, Omega: omega, Tol: 1e-6}); err == nil {
			t.Fatalf("ω = %g accepted", omega)
		}
	}
}

func TestPublicEstimateConditionNeedsIterations(t *testing.T) {
	if _, _, _, err := repro.EstimateCondition(repro.Result{}); err == nil {
		t.Fatal("condition estimate from an empty run accepted")
	}
}

func TestPublicService(t *testing.T) {
	svc := repro.NewService(repro.ServiceConfig{Workers: 2})
	defer svc.Close()

	req := repro.SolveRequest{
		Plate:  &repro.PlateSpec{Rows: 10, Cols: 10},
		Solver: repro.SolverSpec{M: 3, Coeffs: "least-squares", Tol: 1e-7},
	}
	cold, err := svc.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Result.Converged || cold.CacheHit {
		t.Fatalf("cold solve: %+v", cold)
	}
	warm, err := svc.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second identical solve missed the cache")
	}

	// The service solution matches the library path end to end.
	p, err := repro.NewPlateProblem(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Solve(p, repro.Config{M: 3, Coeffs: repro.LeastSquaresCoeffs, Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.U {
		if math.Abs(res.U[i]-warm.Result.U[i]) > 1e-9 {
			t.Fatalf("service solution deviates at %d", i)
		}
	}

	if st := svc.Stats(); st.CacheHits < 1 || st.JobsDone != 2 {
		t.Fatalf("service stats: %+v", st)
	}
}
